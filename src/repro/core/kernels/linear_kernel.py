"""Linear color assignment over CSR arrays (kernel for ``LinearColoring``).

Replicates Algorithm 2 — peel, peer-selected kernel coloring, refinement,
reinsert — exactly as :class:`repro.core.linear_coloring.LinearColoring` and
:mod:`repro.graph.simplify` implement it, but in rank space over the packed
flat arrays:

* the peel loop runs on degree counters and an ``alive`` byte array instead
  of a mutated graph copy (same seed order, same LIFO queue, same sorted
  neighbour re-enqueue — rank order equals id order);
* dead vertices keep the ``-1`` color sentinel, which reproduces the
  reference's "neighbour not in the peeled kernel graph" behaviour without
  rebuilding subgraphs (a colored vertex is always alive);
* ``legal_color`` blocking is a per-color bitmask over the full-graph CSR.

Every float comparison keeps the reference expression order (including
refinement's ``cost < best_cost - 1e-12``), and candidate orders, peer
scoring (conflicts first, then stitches, first-best wins) and dict insertion
order match the reference exactly.
"""

from __future__ import annotations

from array import array
from typing import Dict, List

from repro.core.kernels import active_core
from repro.core.kernels.adjacency import CSRAdjacency

#: The C stages allocate per-color counters/bitmasks with this bound
#: (mirrors MAX_COLORS in ``_solvecore.c``).
MAX_COMPILED_COLORS = 64


def linear_color(graph, num_colors: int, options) -> Dict[int, int]:
    """Color ``graph`` with Algorithm 2; bit-identical to ``LinearColoring``."""
    flat = graph.to_arrays()
    n = flat.num_vertices
    if n == 0:
        return {}
    csr = CSRAdjacency(flat)
    alpha = options.alpha
    core = active_core() if num_colors <= MAX_COMPILED_COLORS else None

    peeled = core.peel(num_colors, 2, csr) if core is not None else None
    if peeled is None:
        alive, cdeg, sdeg, fdeg, peel_stack = _peel(csr, num_colors)
    else:
        alive, cdeg, sdeg, fdeg, peel_stack = peeled
    kernel_vertices = [r for r in range(n) if alive[r]]

    colors = array("i", bytes(4 * n))
    for rank in range(n):
        colors[rank] = -1

    chosen_order: List[int] = []
    if kernel_vertices:
        orders = _orders(csr, kernel_vertices, cdeg, fdeg, num_colors, options)
        best_colors = None
        best_conflicts = best_stitches = 0
        for candidate_order in orders:
            candidate = array("i", colors)
            if core is not None:
                core.linear_walk(
                    num_colors,
                    alpha,
                    options.use_color_friendly,
                    array("i", candidate_order),
                    csr,
                    candidate,
                )
                conflicts, stitches = core.evaluate(
                    flat.conflict_edges, flat.stitch_edges, candidate
                )
            else:
                _color_in_order(
                    csr, candidate_order, candidate, num_colors, alpha, options
                )
                conflicts, stitches = _evaluate(flat, candidate)
            if best_colors is None or (
                conflicts < best_conflicts
                or (conflicts == best_conflicts and stitches < best_stitches)
            ):
                best_colors = candidate
                best_conflicts, best_stitches = conflicts, stitches
                chosen_order = candidate_order
        colors = best_colors

        if options.use_post_refinement:
            if core is not None:
                core.refine_pass(
                    num_colors, alpha, array("i", kernel_vertices), csr, colors
                )
            else:
                _refine(csr, kernel_vertices, colors, num_colors, alpha)

    # Pop the peel stack: every removed vertex takes a legal color.
    if core is not None:
        stack_arr = (
            peel_stack
            if isinstance(peel_stack, array)
            else array("i", peel_stack)
        )
        core.reinsert(num_colors, stack_arr, csr, colors)
    else:
        for rank in reversed(peel_stack):
            colors[rank] = _legal_color(csr, rank, colors, num_colors)

    # Reference insertion order: chosen kernel order, then reinsert order.
    ids = flat.vertex_ids
    coloring = {ids[rank]: colors[rank] for rank in chosen_order}
    for rank in reversed(peel_stack):
        coloring[ids[rank]] = colors[rank]
    return coloring


# ------------------------------------------------------------------- peeling
def _peel(csr: CSRAdjacency, num_colors: int, max_stitch_degree: int = 2):
    """Iteratively remove non-critical vertices (simplify.peel_low_degree_vertices)."""
    n = csr.num_vertices
    alive = bytearray([1]) * n
    cdeg = [csr.conflict_degree(r) for r in range(n)]
    sdeg = [csr.stitch_degree(r) for r in range(n)]
    fdeg = [csr.friend_degree(r) for r in range(n)]
    candidates = [
        r for r in range(n) if cdeg[r] < num_colors and sdeg[r] < max_stitch_degree
    ]
    pending = bytearray(n)
    for r in candidates:
        pending[r] = 1
    queue = list(candidates)
    stack: List[int] = []
    while queue:
        rank = queue.pop()
        pending[rank] = 0
        if not alive[rank]:
            continue
        if cdeg[rank] >= num_colors or sdeg[rank] >= max_stitch_degree:
            continue
        # Neighbours (conflict ∪ stitch, alive only) in ascending rank order:
        # the two CSR rows are sorted, so a merge keeps them sorted.
        conflict_row = [
            other
            for other in csr.conflict_adj[
                csr.conflict_start[rank] : csr.conflict_start[rank + 1]
            ]
            if alive[other]
        ]
        stitch_row = [
            other
            for other in csr.stitch_adj[
                csr.stitch_start[rank] : csr.stitch_start[rank + 1]
            ]
            if alive[other]
        ]
        neighbours = _merge_sorted(conflict_row, stitch_row)
        alive[rank] = 0
        stack.append(rank)
        for other in conflict_row:
            cdeg[other] -= 1
        for other in stitch_row:
            sdeg[other] -= 1
        for i in range(csr.friend_start[rank], csr.friend_start[rank + 1]):
            other = csr.friend_adj[i]
            if alive[other]:
                fdeg[other] -= 1
        for other in neighbours:
            if (
                not pending[other]
                and alive[other]
                and cdeg[other] < num_colors
                and sdeg[other] < max_stitch_degree
            ):
                pending[other] = 1
                queue.append(other)
    return alive, cdeg, sdeg, fdeg, stack


def _merge_sorted(first: List[int], second: List[int]) -> List[int]:
    """Merge two sorted duplicate-free lists (conflict/stitch rows are disjoint
    per relation but one pair may carry both relations, so dedupe on merge)."""
    out: List[int] = []
    i = j = 0
    while i < len(first) and j < len(second):
        a, b = first[i], second[j]
        if a < b:
            out.append(a)
            i += 1
        elif b < a:
            out.append(b)
            j += 1
        else:
            out.append(a)
            i += 1
            j += 1
    out.extend(first[i:])
    out.extend(second[j:])
    return out


# ------------------------------------------------------------------ ordering
def _orders(csr, kernel_vertices, cdeg, fdeg, num_colors, options):
    """The candidate vertex orders of peer selection (LinearColoring._orders)."""
    sequence = kernel_vertices
    if not options.use_peer_selection:
        return [sequence]
    degree = sorted(sequence, key=lambda r: (-cdeg[r], r))
    round_one: List[int] = []
    round_two: List[int] = []
    round_three: List[int] = []
    for rank in kernel_vertices:
        if cdeg[rank] >= num_colors:
            round_one.append(rank)
        elif fdeg[rank]:
            round_two.append(rank)
        else:
            round_three.append(rank)
    round_one.sort(key=lambda r: (-cdeg[r], r))
    round_two.sort(key=lambda r: (-cdeg[r], r))
    three_round = round_one + round_two + round_three
    return [sequence, degree, three_round]


# ------------------------------------------------------------------ coloring
def _color_in_order(csr, order, colors, num_colors, alpha, options) -> None:
    """Greedy kernel walk (LinearColoring._color_in_order / _pick_color).

    Only alive vertices are ever colored, so ``colors[other] >= 0`` exactly
    reproduces "neighbour present and colored in the peeled kernel graph".
    """
    use_friendly = options.use_color_friendly
    conflict_hits = [0] * num_colors
    stitch_hits = [0] * num_colors
    friend_hits = [0] * num_colors
    for rank in order:
        for c in range(num_colors):
            conflict_hits[c] = 0
            stitch_hits[c] = 0
            friend_hits[c] = 0
        for i in range(csr.conflict_start[rank], csr.conflict_start[rank + 1]):
            other = colors[csr.conflict_adj[i]]
            if other >= 0:
                conflict_hits[other] += 1
        colored_stitches = 0
        for i in range(csr.stitch_start[rank], csr.stitch_start[rank + 1]):
            other = colors[csr.stitch_adj[i]]
            if other >= 0:
                stitch_hits[other] += 1
                colored_stitches += 1
        if use_friendly:
            for i in range(csr.friend_start[rank], csr.friend_start[rank + 1]):
                other = colors[csr.friend_adj[i]]
                if other >= 0:
                    friend_hits[other] += 1
        best = 0
        best_key = (
            conflict_hits[0],
            alpha * (colored_stitches - stitch_hits[0]),
            -friend_hits[0],
        )
        for c in range(1, num_colors):
            key = (
                conflict_hits[c],
                alpha * (colored_stitches - stitch_hits[c]),
                -friend_hits[c],
            )
            if key < best_key:
                best_key = key
                best = c
        colors[rank] = best


def _evaluate(flat, colors):
    """(conflicts, stitches) over the kernel subgraph (core.evaluation.evaluate).

    The peeled kernel graph contains only alive vertices; an edge counts only
    when both endpoints are colored (colored implies alive).
    """
    conflicts = 0
    edges = flat.conflict_edges
    for i in range(0, len(edges), 2):
        cu = colors[edges[i]]
        if cu >= 0 and cu == colors[edges[i + 1]]:
            conflicts += 1
    stitches = 0
    edges = flat.stitch_edges
    for i in range(0, len(edges), 2):
        cu, cv = colors[edges[i]], colors[edges[i + 1]]
        if cu >= 0 and cv >= 0 and cu != cv:
            stitches += 1
    return conflicts, stitches


# ---------------------------------------------------------------- refinement
def _refine(csr, kernel_vertices, colors, num_colors, alpha) -> None:
    """One greedy improvement pass (core.refinement.refine_coloring)."""
    for rank in kernel_vertices:
        current = colors[rank]
        current_cost = _local_cost(csr, rank, current, colors, alpha)
        best_color = current
        best_cost = current_cost
        for color in range(num_colors):
            if color == current:
                continue
            cost = _local_cost(csr, rank, color, colors, alpha)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_color = color
        if best_color != current:
            colors[rank] = best_color


def _local_cost(csr, rank, color, colors, alpha) -> float:
    conflicts = 0
    for i in range(csr.conflict_start[rank], csr.conflict_start[rank + 1]):
        if colors[csr.conflict_adj[i]] == color:
            conflicts += 1
    stitches = 0
    for i in range(csr.stitch_start[rank], csr.stitch_start[rank + 1]):
        other = colors[csr.stitch_adj[i]]
        if other >= 0 and other != color:
            stitches += 1
    return conflicts + alpha * stitches


# ------------------------------------------------------------------ reinsert
def _legal_color(csr, rank, colors, num_colors) -> int:
    """Legal color for a peeled vertex (simplify.legal_color) via bitmasks."""
    blocked = 0
    for i in range(csr.conflict_start[rank], csr.conflict_start[rank + 1]):
        other = colors[csr.conflict_adj[i]]
        if other >= 0:
            blocked |= 1 << other
    # Stitch rows are sorted ascending — the reference's sorted() visit order.
    for i in range(csr.stitch_start[rank], csr.stitch_start[rank + 1]):
        color = colors[csr.stitch_adj[i]]
        if color >= 0 and not blocked & (1 << color):
            return color
    for color in range(num_colors):
        if not blocked & (1 << color):
            return color
    damage = [0] * num_colors
    for i in range(csr.conflict_start[rank], csr.conflict_start[rank + 1]):
        other = colors[csr.conflict_adj[i]]
        if other >= 0:
            damage[other] += 1
    best = 0
    for color in range(1, num_colors):
        if damage[color] < damage[best]:
            best = color
    return best
