"""Greedy post-refinement of a complete coloring (Algorithm 2, stage 3).

A single pass visits every vertex once and re-assigns it to the locally
cheapest color given its already-colored neighbours; the pass never increases
the objective, so it is safe to append to any algorithm's output.  Multiple
passes may be requested, stopping early once a pass makes no change.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.graph.decomposition_graph import DecompositionGraph


def local_color_cost(
    graph: DecompositionGraph,
    vertex: int,
    color: int,
    coloring: Dict[int, int],
    alpha: float,
) -> float:
    """Return the cost contributed by ``vertex`` if it takes ``color``."""
    conflicts = 0
    for neighbour in graph.conflict_neighbors(vertex):
        if coloring.get(neighbour) == color:
            conflicts += 1
    stitches = 0
    for neighbour in graph.stitch_neighbors(vertex):
        other = coloring.get(neighbour)
        if other is not None and other != color:
            stitches += 1
    return conflicts + alpha * stitches


def refine_coloring(
    graph: DecompositionGraph,
    coloring: Dict[int, int],
    num_colors: int,
    alpha: float,
    max_passes: int = 1,
    order: Optional[Sequence[int]] = None,
) -> Tuple[Dict[int, int], int]:
    """Greedily improve ``coloring`` in place.

    Returns the (same) coloring dictionary and the number of vertices whose
    color changed across all passes.
    """
    if order is None:
        order = graph.vertices()
    changed_total = 0
    for _ in range(max_passes):
        changed_this_pass = 0
        for vertex in order:
            if vertex not in coloring:
                continue
            current = coloring[vertex]
            current_cost = local_color_cost(graph, vertex, current, coloring, alpha)
            best_color = current
            best_cost = current_cost
            for color in range(num_colors):
                if color == current:
                    continue
                cost = local_color_cost(graph, vertex, color, coloring, alpha)
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_color = color
            if best_color != current:
                coloring[vertex] = best_color
                changed_this_pass += 1
        changed_total += changed_this_pass
        if changed_this_pass == 0:
            break
    return coloring, changed_total
