"""Plain greedy K-coloring.

Serves three roles: the fallback when exact backtracking exceeds its budget,
the group-assignment step of the SDP greedy mapping, and a reference point for
ablation benchmarks.  Vertices are processed in decreasing conflict-degree
order; each picks the color with the smallest immediate cost (new conflicts
first, then missed stitch matches), breaking ties toward lower color indices
so the result is deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.coloring import ColoringAlgorithm
from repro.graph.decomposition_graph import DecompositionGraph
from repro.graph.simplify import MergedGraph


def pick_greedy_color(
    graph: DecompositionGraph,
    vertex: int,
    coloring: Dict[int, int],
    num_colors: int,
    alpha: float,
) -> int:
    """Return the locally cheapest color for ``vertex`` given ``coloring``."""
    conflict_hits = [0] * num_colors
    stitch_hits = [0] * num_colors
    for neighbour in graph.conflict_neighbors(vertex):
        color = coloring.get(neighbour)
        if color is not None:
            conflict_hits[color] += 1
    colored_stitches = 0
    for neighbour in graph.stitch_neighbors(vertex):
        color = coloring.get(neighbour)
        if color is not None:
            stitch_hits[color] += 1
            colored_stitches += 1

    def cost(color: int) -> Tuple[float, int]:
        stitches = colored_stitches - stitch_hits[color]
        return (conflict_hits[color] + alpha * stitches, color)

    return min(range(num_colors), key=cost)


def greedy_color_graph(
    graph: DecompositionGraph,
    num_colors: int,
    alpha: float,
    order: Optional[Sequence[int]] = None,
) -> Dict[int, int]:
    """Greedily color a graph; ``order`` defaults to decreasing conflict degree."""
    if order is None:
        order = sorted(
            graph.vertices(), key=lambda v: (-graph.conflict_degree(v), v)
        )
    coloring: Dict[int, int] = {}
    for vertex in order:
        coloring[vertex] = pick_greedy_color(graph, vertex, coloring, num_colors, alpha)
    return coloring


def greedy_color_merged(
    merged: MergedGraph, num_colors: int, alpha: float
) -> Dict[int, int]:
    """Greedily color a merged (weighted) graph; returns node -> color.

    Mirrors :func:`greedy_color_graph` exactly on singleton-group merged
    graphs: nodes are processed in decreasing conflict-degree order (number
    of distinct conflict-weighted edges, the merged analogue of
    ``conflict_degree``), cost accumulators stay integers until the single
    ``hits + alpha * misses`` float comparison, and ties break toward the
    lower color then the lower node id.  An earlier version ordered by group
    size and accumulated float costs, which diverged from the unweighted
    reference on singleton groups.
    """
    n = merged.num_nodes
    conflict = merged.conflict_weight
    stitch = merged.stitch_weight
    adjacency: Dict[int, List[Tuple[int, int, int]]] = {node: [] for node in range(n)}
    conflict_degree = [0] * n
    keys = set(conflict) | set(stitch)
    for a, b in sorted(keys):
        cw = conflict.get((a, b), 0)
        sw = stitch.get((a, b), 0)
        adjacency[a].append((b, cw, sw))
        adjacency[b].append((a, cw, sw))
        if cw:
            conflict_degree[a] += 1
            conflict_degree[b] += 1
    order = sorted(range(n), key=lambda node: (-conflict_degree[node], node))

    coloring: Dict[int, int] = {}
    for node in order:
        conflict_hits = [0] * num_colors
        stitch_total = 0
        stitch_match = [0] * num_colors
        for other, cw, sw in adjacency[node]:
            color = coloring.get(other)
            if color is None:
                continue
            conflict_hits[color] += cw
            stitch_total += sw
            stitch_match[color] += sw
        coloring[node] = min(
            range(num_colors),
            key=lambda c: (conflict_hits[c] + alpha * (stitch_total - stitch_match[c]), c),
        )
    return coloring


class GreedyColoring(ColoringAlgorithm):
    """Stand-alone greedy colorer (reference baseline)."""

    name = "greedy"

    def color(self, graph: DecompositionGraph) -> Dict[int, int]:
        """Color ``graph`` greedily in decreasing conflict-degree order."""
        from repro.core.kernels import select_kernel

        kernel = select_kernel("greedy")
        if kernel is not None:
            return kernel.greedy_color(graph, self.num_colors, self.options.alpha)
        return greedy_color_graph(graph, self.num_colors, self.options.alpha)
