"""SDP-based color assignment (Section 3.1).

Both SDP flavours evaluated in the paper share the relaxation stage and
differ only in how the continuous Gram matrix is mapped back to K colors:

* **SDP + Greedy** — the greedy mapping of the TPL decomposer [4]: vertex
  pairs are visited in decreasing ``x_ij`` order and unioned whenever the
  union stays conflict-free; the resulting groups are then colored greedily.
* **SDP + Backtrack** (Algorithm 1) — pairs with ``x_ij >= t_th`` are merged
  into larger vertices, and an exact branch-and-bound search colors the
  merged graph.  On merged graphs that are still large the search runs under
  an expansion budget seeded with the greedy solution, so it degrades
  gracefully instead of blowing up (the paper notes the same runtime risk).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.backtrack import BacktrackStatistics, run_backtrack_search
from repro.core.coloring import ColoringAlgorithm
from repro.core.greedy_coloring import greedy_color_merged
from repro.core.refinement import refine_coloring
from repro.errors import ConfigurationError
from repro.graph.decomposition_graph import DecompositionGraph
from repro.graph.simplify import MergedGraph, build_merged_graph
from repro.graph.unionfind import UnionFind
from repro.opt.sdp import SdpOptions, SdpResult, VectorProgramSolver

#: Pairs with a relaxed inner product below this value are never considered
#: "same color" candidates by the greedy mapping.
GREEDY_MAPPING_FLOOR = 0.0


class SdpColoring(ColoringAlgorithm):
    """SDP relaxation followed by greedy or backtrack mapping."""

    def __init__(
        self,
        num_colors: int,
        options=None,
        mapping: str = "backtrack",
        sdp_options: Optional[SdpOptions] = None,
    ) -> None:
        super().__init__(num_colors, options)
        if mapping not in ("backtrack", "greedy"):
            raise ConfigurationError(
                f"unknown SDP mapping {mapping!r}; expected 'backtrack' or 'greedy'"
            )
        self.mapping = mapping
        self.name = f"sdp-{mapping}"
        self.sdp_options = sdp_options or SdpOptions()
        #: Statistics of the last backtrack mapping (None for greedy mapping).
        self.last_backtrack_stats: Optional[BacktrackStatistics] = None

    # ------------------------------------------------------------------ API
    def color(self, graph: DecompositionGraph) -> Dict[int, int]:
        """Color ``graph`` via the vector-program relaxation plus mapping."""
        n = graph.num_vertices
        if n == 0:
            return {}
        if n == 1:
            return {graph.vertices()[0]: 0}
        if graph.num_conflict_edges == 0:
            # No conflicts: give every vertex the same mask (zero stitches).
            return {vertex: 0 for vertex in graph.vertices()}

        solver = VectorProgramSolver(
            self.num_colors, alpha=self.options.alpha, options=self.sdp_options
        )
        result, index = solver.solve_graph(
            graph.vertices(), graph.conflict_edges(), graph.stitch_edges()
        )
        if self.mapping == "greedy":
            coloring = self._greedy_mapping(graph, result, index)
        else:
            coloring = self._backtrack_mapping(graph, result, index)
            refine_coloring(
                graph, coloring, self.num_colors, self.options.alpha, max_passes=2
            )
        return coloring

    # -------------------------------------------------------------- mapping
    def _sorted_pairs(
        self,
        graph: DecompositionGraph,
        result: SdpResult,
        index: Dict[int, int],
        floor: float,
    ) -> List[Tuple[float, int, int]]:
        """Return vertex pairs sorted by decreasing relaxed inner product."""
        vertices = graph.vertices()
        pairs: List[Tuple[float, int, int]] = []
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                value = result.inner_product(index[u], index[v])
                if value >= floor:
                    pairs.append((value, u, v))
        pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        return pairs

    def _greedy_mapping(
        self,
        graph: DecompositionGraph,
        result: SdpResult,
        index: Dict[int, int],
    ) -> Dict[int, int]:
        """Greedy mapping of [4]: union compatible pairs in x_ij order."""
        pairs = self._sorted_pairs(graph, result, index, GREEDY_MAPPING_FLOOR)
        uf = UnionFind(graph.vertices())
        members: Dict[int, set] = {v: {v} for v in graph.vertices()}
        for _, u, v in pairs:
            ru, rv = uf.find(u), uf.find(v)
            if ru == rv:
                continue
            if self._groups_conflict(graph, members[ru], members[rv]):
                continue
            root = uf.union(ru, rv)
            merged_members = members[ru] | members[rv]
            members[root] = merged_members
        merge_pairs = [
            (u, uf.find(u)) for u in graph.vertices() if uf.find(u) != u
        ]
        merged = build_merged_graph(graph, merge_pairs)
        node_coloring = greedy_color_merged(merged, self.num_colors, self.options.alpha)
        return merged.expand_coloring(node_coloring)

    def _backtrack_mapping(
        self,
        graph: DecompositionGraph,
        result: SdpResult,
        index: Dict[int, int],
    ) -> Dict[int, int]:
        """Algorithm 1: threshold merge then exact search on the merged graph.

        All pairs with ``x_ij >= t_th`` are merged.  When the merged graph is
        still larger than the backtrack node limit, merging continues down the
        sorted ``x_ij`` list (never across a conflict) until it fits — the SDP
        solution keeps guiding which vertices share a mask, and the exact
        search then optimises the small cluster graph.
        """
        threshold = self.options.sdp_merge_threshold
        node_limit = self.options.backtrack_node_limit
        pairs = self._sorted_pairs(graph, result, index, floor=-1.0)

        uf = UnionFind(graph.vertices())
        members: Dict[int, set] = {v: {v} for v in graph.vertices()}
        num_groups = graph.num_vertices
        for value, u, v in pairs:
            if value < threshold and num_groups <= node_limit:
                break
            ru, rv = uf.find(u), uf.find(v)
            if ru == rv:
                continue
            if self._groups_conflict(graph, members[ru], members[rv]):
                continue
            root = uf.union(ru, rv)
            members[root] = members[ru] | members[rv]
            num_groups -= 1

        merge_pairs = [(u, uf.find(u)) for u in graph.vertices() if uf.find(u) != u]
        merged = build_merged_graph(graph, merge_pairs)

        expansion_limit = self.options.backtrack_expansion_limit
        if merged.num_nodes > node_limit:
            # Dense graph that could not be clustered further without forcing
            # conflicts: run the search as an anytime improvement pass.
            expansion_limit = min(expansion_limit, 150_000)
        stats = BacktrackStatistics()
        node_coloring = run_backtrack_search(
            merged,
            self.num_colors,
            self.options.alpha,
            expansion_limit=expansion_limit,
            initial=greedy_color_merged(merged, self.num_colors, self.options.alpha),
            statistics=stats,
        )
        self.last_backtrack_stats = stats
        return merged.expand_coloring(node_coloring)

    @staticmethod
    def _groups_conflict(graph: DecompositionGraph, first: set, second: set) -> bool:
        """Return True if any conflict edge crosses the two vertex groups."""
        small, large = (first, second) if len(first) <= len(second) else (second, first)
        for vertex in small:
            if graph.conflict_neighbors(vertex) & large:
                return True
        return False
