"""repro — layout decomposition for quadruple patterning lithography and beyond.

A full reimplementation of the DAC 2014 decomposition framework of Yu & Pan:
decomposition-graph construction from Metal1/contact layouts, graph division
(independent components, low-degree peeling, biconnected blocks, Gomory-Hu
tree (K-1)-cut removal with color rotation) and four color-assignment
algorithms (exact ILP, SDP + backtrack, SDP + greedy, linear color
assignment), generalised to any K >= 4.

On top of the paper's flow sits an execution runtime (:mod:`repro.runtime`)
that exploits the independence of divided components: ``workers=N`` colors
components across a process pool (largest-first, deterministic merge,
automatic serial fallback) and a :class:`ComponentCache` memoises solved
components under a canonical graph hash, so cells repeated within or across
layouts are solved once.  Both knobs are pure execution strategies — masks,
conflict counts and stitch counts stay bit-identical to the serial flow.

Quick start::

    from repro import Decomposer, DecomposerOptions
    from repro.bench import load_circuit

    layout = load_circuit("C432", scale=0.35)
    options = DecomposerOptions.for_quadruple_patterning(algorithm="linear")
    result = Decomposer(options).decompose(layout, layer="metal1")
    print(result.solution.summary())

Batch decomposition of many layouts with shared workers and cache::

    from repro import decompose_many

    batch = decompose_many({"a": layout_a, "b": layout_b}, workers=4)
    print(batch.aggregate_summary())

The same batch engine backs the ``repro-decompose batch`` CLI subcommand and
the ``--workers`` / ``--cache`` flags of ``python -m repro.experiments``.

For request traffic, :mod:`repro.service` wraps it all in a long-running
asyncio HTTP server (``repro-decompose serve`` / ``python -m repro.service``)
with a persistent worker pool and a SQLite-backed component cache shared
across processes and restarts; see README "Running as a service".

To scale past one machine, :mod:`repro.cluster` shards the work across many
such servers: a coordinator (``repro-decompose cluster coordinator``) routes
every divided component to its cache-owning node via a consistent-hash ring
and merges results byte-identically, with heartbeat-driven failover; see
README "Running a cluster".
"""

from repro.errors import (
    ConfigurationError,
    DecompositionError,
    GeometryError,
    GraphError,
    InfeasibleError,
    LayoutError,
    LayoutIOError,
    ReproError,
    SolverError,
    TimeoutExceededError,
)
from repro.geometry import Layout, Point, Polygon, Rect, Shape
from repro.graph import (
    ConstructionOptions,
    DecompositionGraph,
    build_decomposition_graph,
)
from repro.core import (
    AlgorithmOptions,
    BacktrackColoring,
    Decomposer,
    DecomposerOptions,
    DecompositionResult,
    DecompositionSolution,
    DivisionOptions,
    GreedyColoring,
    IlpColoring,
    LinearColoring,
    SdpColoring,
    decompose_layout,
    divide_and_color,
    make_colorer,
)
from repro.runtime import (
    BatchResult,
    CacheStats,
    ComponentCache,
    ComponentScheduler,
    decompose_many,
    schedule_and_color,
)
from repro.analysis import (
    conflict_report,
    decomposition_to_svg,
    graph_statistics,
    layout_to_svg,
    mask_balance,
    summary_text,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GeometryError",
    "LayoutError",
    "LayoutIOError",
    "GraphError",
    "SolverError",
    "InfeasibleError",
    "TimeoutExceededError",
    "DecompositionError",
    "ConfigurationError",
    # geometry
    "Point",
    "Rect",
    "Polygon",
    "Layout",
    "Shape",
    # graph
    "DecompositionGraph",
    "ConstructionOptions",
    "build_decomposition_graph",
    # core
    "AlgorithmOptions",
    "DecomposerOptions",
    "DivisionOptions",
    "Decomposer",
    "DecompositionResult",
    "DecompositionSolution",
    "decompose_layout",
    "divide_and_color",
    "make_colorer",
    "IlpColoring",
    "SdpColoring",
    "LinearColoring",
    "BacktrackColoring",
    "GreedyColoring",
    # runtime
    "BatchResult",
    "CacheStats",
    "ComponentCache",
    "ComponentScheduler",
    "decompose_many",
    "schedule_and_color",
    # analysis
    "mask_balance",
    "conflict_report",
    "graph_statistics",
    "summary_text",
    "layout_to_svg",
    "decomposition_to_svg",
]
