"""Memoisation of solved decomposition-graph components.

Standard-cell layouts repeat the same cell across the die, so after graph
division the scheduler sees the same small component over and over.  The
:class:`ComponentCache` stores each solved component's coloring in canonical
(rank) space, keyed by :func:`repro.runtime.hashing.canonical_component_key`;
a later isomorphic component replays the stored colors through its own rank
map instead of re-running the solver.

Because the canonical relabeling is order-preserving and every colorer is
equivariant under order-preserving relabelings (see :mod:`hashing`), a cache
hit returns exactly the coloring a fresh solve would have produced — caching
never changes results, only CPU time.  Entries also carry the component's
:class:`~repro.core.division.DivisionReport` delta and solver-timeout count
so replays reproduce the full solve byproducts, not just the colors.  One
cache is safe to share across the layouts of a batch and across algorithms
and K (the key fingerprints both).

Storage is pluggable: :class:`ComponentCache` is a thin frontend (rank
mapping + hit/miss accounting) over a :class:`CacheBackend`.  Two backends
ship with the library:

* :class:`InMemoryBackend` — the default LRU ``OrderedDict`` store, private
  to one process;
* :class:`repro.runtime.sqlite_cache.SqliteBackend` — a SQLite (WAL) file
  shared by many processes and surviving restarts, used by the decomposition
  server so repeated cells are solved once *across requests and machines
  lifetimes*, not just within one batch.

:func:`open_cache` picks between them from plain configuration values (the
CLI flags and server options map straight onto it).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Tuple

from repro.core.division import DivisionReport
from repro.core.options import AlgorithmOptions, DivisionOptions
from repro.graph.decomposition_graph import DecompositionGraph
from repro.obs.hist import Histogram
from repro.runtime.hashing import canonical_component_key, canonical_vertex_order

#: Latency of :meth:`ComponentCache.lookup` (backend get + rank replay),
#: process-wide across every cache instance.  Like the per-worker hit/miss
#: counters, observations made inside pool worker *processes* stay in those
#: processes; the server's ``/metrics`` shows the serving process's view.
LOOKUP_HISTOGRAM = Histogram()


def lookup_histogram() -> Histogram:
    """Accessor for the process-wide cache-lookup latency histogram."""
    return LOOKUP_HISTOGRAM


@dataclass
class ComponentRecord:
    """One solved component: coloring plus solve byproducts.

    ``coloring`` is expressed over canonical ranks inside the cache and over
    real vertex ids in the records returned by :meth:`ComponentCache.lookup`.
    ``shape`` fingerprints the solved graph's structure (vertex count and
    the three edge counts); lookups reject records whose shape does not
    match the queried graph, so a key arriving from an untrusted component
    request can never replay some *other* component's coloring as a hit.
    """

    coloring: Dict[int, int]
    report: DivisionReport = field(default_factory=DivisionReport)
    solver_timeouts: int = 0
    shape: Optional[Tuple[int, int, int, int]] = None


def graph_shape(graph: DecompositionGraph) -> Tuple[int, int, int, int]:
    """The structural fingerprint stored in (and checked against) records."""
    return (
        graph.num_vertices,
        graph.num_conflict_edges,
        graph.num_stitch_edges,
        graph.num_friend_edges,
    )


def _shape_matches(record: ComponentRecord, expected) -> bool:
    """Shared backend-side guard; shape-less legacy records fall back to the
    coloring-size check so a replay can never KeyError."""
    if expected is None:
        return True
    if record.shape is not None:
        return record.shape == expected
    return len(record.coloring) == expected[0]


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ComponentCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entry count at the time of the last :meth:`ComponentCache.snapshot_stats`.
    entries_hint: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line report used by the CLI and batch summaries."""
        return (
            f"component cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.entries_hint} entries"
        )

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (batch reports, server ``/stats``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries_hint,
            "hit_rate": self.hit_rate,
        }


class CacheBackend(Protocol):
    """Storage contract behind :class:`ComponentCache`.

    Records are stored and returned in canonical rank space (coloring keyed
    by rank ``0..n-1``); the frontend does all vertex-id mapping.  ``put``
    returns the number of entries evicted to make room, so the frontend can
    account for them.  Backends own their persistence/concurrency story;
    the frontend never assumes entries survive between calls (a concurrent
    process may have evicted them).

    ``get`` takes the caller's expected structural shape (``None`` = don't
    check): a record under the right key but the wrong shape is a *miss* —
    returned as ``None``, counted as a miss by backends with persistent
    counters, and not refreshed in LRU order — so an untrusted key can
    neither smuggle a mismatched coloring out nor distort the accounting.
    """

    def get(
        self, key: str, expected_shape: Optional[Tuple[int, int, int, int]] = None
    ) -> Optional[ComponentRecord]: ...

    def put(self, key: str, record: ComponentRecord) -> int: ...

    def __len__(self) -> int: ...

    def clear(self) -> None: ...

    def close(self) -> None: ...


class InMemoryBackend:
    """Process-private LRU store (the historical ``ComponentCache`` storage).

    Parameters
    ----------
    max_entries:
        Upper bound on stored components; ``None`` means unbounded.  Eviction
        is least-recently-used so the hot cells of a layout stay resident.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, ComponentRecord]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: str, expected_shape: Optional[Tuple[int, int, int, int]] = None
    ) -> Optional[ComponentRecord]:
        record = self._entries.get(key)
        if record is None or not _shape_matches(record, expected_shape):
            return None
        self._entries.move_to_end(key)
        return record

    def put(self, key: str, record: ComponentRecord) -> int:
        self._entries[key] = record
        self._entries.move_to_end(key)
        evicted = 0
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._entries.clear()

    def close(self) -> None:  # nothing to release
        pass


class ComponentCache:
    """Cache of component solutions in canonical rank space.

    Parameters
    ----------
    max_entries:
        Upper bound on stored components; ``None`` means unbounded.  Only
        meaningful when ``backend`` is not given (it sizes the default
        in-memory LRU backend).
    backend:
        Storage implementation; defaults to a process-private
        :class:`InMemoryBackend`.  Pass a
        :class:`~repro.runtime.sqlite_cache.SqliteBackend` for a disk-backed
        cache shared across processes and restarts.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        backend: Optional[CacheBackend] = None,
    ) -> None:
        if backend is None:
            backend = InMemoryBackend(max_entries)
        elif max_entries is not None:
            raise ValueError("pass max_entries to the backend, not both")
        self.backend = backend
        self.stats = CacheStats()

    @property
    def max_entries(self) -> Optional[int]:
        """Entry bound of the underlying backend (``None`` when unbounded)."""
        return getattr(self.backend, "max_entries", None)

    def __len__(self) -> int:
        return len(self.backend)

    def key_of(
        self,
        graph: DecompositionGraph,
        num_colors: int,
        algorithm: str,
        algorithm_options: AlgorithmOptions,
        division: DivisionOptions,
    ) -> str:
        """Return the canonical cache key of ``graph`` for this configuration."""
        return canonical_component_key(
            graph, num_colors, algorithm, algorithm_options, division
        )

    # ------------------------------------------------------------- lookup
    def lookup(self, key: str, graph: DecompositionGraph) -> Optional[ComponentRecord]:
        """Return the cached solution replayed onto ``graph``'s vertex ids.

        Records a hit or miss in :attr:`stats`; returns ``None`` on a miss.
        A record whose stored shape (or, for shape-less records, coloring
        size) does not match ``graph``'s is a miss, never a crash: keys may
        arrive from untrusted component requests (a node trusts the
        coordinator's routing hash), and the shape guard keeps a mismatched
        key from replaying a structurally different component's coloring.
        The guard is structural, not cryptographic — a forged key naming a
        *same-shape* different component yields a wrong answer to the
        forging caller only; stores always re-key locally, so the cache
        itself can never be poisoned (see
        :func:`repro.runtime.component_io.solve_component_job`).
        """
        started = time.perf_counter()
        record = self.backend.get(key, graph_shape(graph))
        if record is None:
            self.stats.misses += 1
            LOOKUP_HISTOGRAM.observe(time.perf_counter() - started)
            return None
        self.stats.hits += 1
        order = canonical_vertex_order(graph)
        replayed = ComponentRecord(
            coloring={vertex: record.coloring[rank] for rank, vertex in enumerate(order)},
            report=record.report.component_delta(),
            solver_timeouts=record.solver_timeouts,
        )
        LOOKUP_HISTOGRAM.observe(time.perf_counter() - started)
        return replayed

    def store(
        self,
        key: str,
        graph: DecompositionGraph,
        coloring: Dict[int, int],
        report: Optional[DivisionReport] = None,
        solver_timeouts: int = 0,
    ) -> None:
        """Store a solution (on ``graph``'s own vertex ids) under ``key``."""
        order = canonical_vertex_order(graph)
        record = ComponentRecord(
            coloring={rank: coloring[vertex] for rank, vertex in enumerate(order)},
            report=report.component_delta() if report is not None else DivisionReport(),
            solver_timeouts=solver_timeouts,
            shape=graph_shape(graph),
        )
        self.stats.evictions += self.backend.put(key, record)

    def snapshot_stats(self) -> CacheStats:
        """Return a point-in-time copy of the stats with the entry count.

        A copy, not the live object: callers (e.g. batch reports) keep the
        snapshot after the cache continues accumulating hits elsewhere.
        """
        return CacheStats(
            hits=self.stats.hits,
            misses=self.stats.misses,
            evictions=self.stats.evictions,
            entries_hint=len(self.backend),
        )

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self.backend.clear()

    def close(self) -> None:
        """Release backend resources (database connections etc.)."""
        self.backend.close()


def open_cache(
    db_path: Optional[str] = None,
    max_entries: Optional[int] = None,
) -> ComponentCache:
    """Build a :class:`ComponentCache` from plain configuration values.

    ``db_path=None`` returns the in-memory LRU cache; a path opens (or
    creates) the shared SQLite store at that location.  This is the single
    construction point used by the CLI flags (``--cache-db`` /
    ``--cache-max-entries``) and by every server worker process.
    """
    if db_path is None:
        return ComponentCache(max_entries=max_entries)
    from repro.runtime.sqlite_cache import SqliteBackend

    return ComponentCache(backend=SqliteBackend(db_path, max_entries=max_entries))
