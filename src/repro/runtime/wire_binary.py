"""Binary wire frames for the component micro-batch hot path.

``POST /components`` is the cluster's dominant byte stream: every layout a
coordinator serves ships each distinct component's graph to its owner node.
The JSON v1 schema (:mod:`repro.runtime.component_io`) expands every edge
into a nested two-element list — parsing cost scales with the *text*, not
the structure.  The v2 frame defined here ships the graphs as the packed
flat arrays of :mod:`repro.graph.flat` instead: length-prefixed, little-
endian, base64-free, decoded by ``struct``/``array`` at memcpy speed.

Content negotiation is by ``Content-Type``:

* a v2 sender marks the request body
  ``application/x-repro-components-v2`` (:data:`COMPONENTS_V2_CONTENT_TYPE`);
* a v2 node decodes it natively; a **pre-v2 node** answers ``400`` (the body
  is not JSON), which the coordinator treats as "this peer speaks JSON only"
  — it re-sends the batch in the v1 JSON schema and remembers the downgrade
  for the node's lifetime.  Mixed-version clusters therefore keep working;
  they just keep paying the JSON tax on the old nodes.

Frame layout (all integers little-endian)::

    <4s magic  b"RPC2">
    <B  frame version (1 or 2)>
    <I  colors>
    <B  algorithm length> <algorithm utf-8>
    version >= 2 only:
        <B  trace id length> <trace id ascii>   # 0 = request is untraced
    <I  component count>
    per component:
        <B  key length> <canonical key ascii>   # 0 = sender did not hash
        <I  graph frame length> <flat-graph frame>   # repro.graph.flat

Version 2 adds only the optional trace-id field.  The encoder emits a v1
envelope whenever no trace id is supplied, so untraced traffic is
bit-identical to the pre-v2 wire and old peers never see a version they
cannot parse.  A traced coordinator talking to a v1-only node gets a 400
naming the unsupported version; the coordinator retries that node with v1
frames (trace id carried in the ``X-Repro-Trace-Id`` header instead) and
remembers the downgrade for the node's lifetime.

Each component's canonical cache key rides along so the node never re-hashes
a graph the coordinator already hashed for routing — the "hash once per
component per request" contract.  The per-component graph frames are length-
prefixed, so one malformed frame is reported as that component's error entry
while its batch siblings decode and solve normally.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.graph.flat import FlatFrameError, FlatGraph
from repro.runtime.component_io import ComponentWireError

#: ``Content-Type`` marking a v2 binary components request body.
COMPONENTS_V2_CONTENT_TYPE = "application/x-repro-components-v2"

_MAGIC = b"RPC2"
#: Oldest envelope layout every node understands.
BASE_FRAME_VERSION = 1
#: Newest envelope layout this build speaks (v2 = v1 + optional trace id).
FRAME_VERSION = 2

_ENVELOPE = struct.Struct("<4sBIB")  # magic, version, colors, algorithm length
_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")


def encode_components_frame(
    entries: List[Tuple[Optional[str], FlatGraph]],
    colors: int,
    algorithm: str,
    trace_id: Optional[str] = None,
    force_version: Optional[int] = None,
) -> bytes:
    """Encode one ``POST /components`` binary request body.

    ``entries`` pairs each component's canonical key (``None`` when the
    sender did not compute one) with its flat-array graph.  Untraced
    requests encode as v1 (bit-identical to the pre-trace wire); a
    ``trace_id`` selects v2.  ``force_version=1`` drops the trace field
    for peers that rejected v2 (the sticky frame downgrade).
    """
    algorithm_utf8 = algorithm.encode("utf-8")
    if len(algorithm_utf8) > 255:
        raise ComponentWireError(f"algorithm name too long: {algorithm!r}")
    version = force_version
    if version is None:
        version = FRAME_VERSION if trace_id else BASE_FRAME_VERSION
    if version not in (BASE_FRAME_VERSION, FRAME_VERSION):
        raise ComponentWireError(f"cannot encode components frame version {version}")
    parts: List[bytes] = [
        _ENVELOPE.pack(_MAGIC, version, colors, len(algorithm_utf8)),
        algorithm_utf8,
    ]
    if version >= 2:
        trace_ascii = (trace_id or "").encode("ascii")
        if len(trace_ascii) > 255:
            raise ComponentWireError(f"trace id too long: {trace_id!r}")
        parts.append(_U8.pack(len(trace_ascii)))
        parts.append(trace_ascii)
    parts.append(_U32.pack(len(entries)))
    for key, flat in entries:
        key_ascii = (key or "").encode("ascii")
        if len(key_ascii) > 255:
            raise ComponentWireError(f"component key too long: {key!r}")
        frame = flat.to_bytes()
        parts.append(_U8.pack(len(key_ascii)))
        parts.append(key_ascii)
        parts.append(_U32.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def frame_size(flat: FlatGraph, key: Optional[str] = None) -> int:
    """Exact on-wire byte cost of one component entry (for batch budgeting)."""
    return _U8.size + len(key or "") + _U32.size + flat.frame_size()


class ComponentFrame:
    """One decoded component of a v2 request: its key, graph, or decode error.

    ``frame`` keeps the entry's raw graph-frame bytes so the server can hand
    them straight to the worker transport (shared memory or inline) without
    re-encoding the already-validated :attr:`flat`.
    """

    __slots__ = ("key", "flat", "frame", "error")

    def __init__(
        self,
        key: Optional[str] = None,
        flat: Optional[FlatGraph] = None,
        frame: Optional[bytes] = None,
        error: Optional[str] = None,
    ) -> None:
        self.key = key
        self.flat = flat
        self.frame = frame
        self.error = error


def decode_components_frame(
    data: bytes,
) -> Tuple[int, str, Optional[str], List[ComponentFrame]]:
    """Decode a binary request body into ``(colors, algorithm, trace_id, components)``.

    Accepts both the v1 and v2 envelopes; ``trace_id`` is ``None`` for v1
    bodies and for v2 bodies whose trace field is empty.  A malformed
    *envelope* (bad magic/version, truncated header or entry framing)
    raises :class:`ComponentWireError` — the whole request is
    unintelligible and answers ``400``.  A malformed *graph frame inside an
    intact entry* becomes that entry's :attr:`ComponentFrame.error` so the
    node fails only that component, mirroring the JSON path's per-entry
    validation envelopes.
    """
    view = memoryview(data)
    try:
        magic, version, colors, algorithm_length = _ENVELOPE.unpack_from(view, 0)
    except struct.error as exc:
        raise ComponentWireError(f"truncated components frame header: {exc}") from exc
    if magic != _MAGIC:
        raise ComponentWireError(
            f"bad components frame magic {bytes(magic)!r} (expected {_MAGIC!r})"
        )
    if not BASE_FRAME_VERSION <= version <= FRAME_VERSION:
        raise ComponentWireError(
            f"unsupported components frame version {version} "
            f"(this node speaks versions {BASE_FRAME_VERSION}-{FRAME_VERSION})"
        )
    cursor = _ENVELOPE.size
    if cursor + algorithm_length > len(view):
        raise ComponentWireError("components frame truncated in algorithm name")
    try:
        algorithm = bytes(view[cursor : cursor + algorithm_length]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ComponentWireError(f"invalid algorithm name bytes: {exc}") from exc
    cursor += algorithm_length
    trace_id: Optional[str] = None
    if version >= 2:
        if cursor + _U8.size > len(view):
            raise ComponentWireError("components frame truncated before trace id")
        (trace_length,) = _U8.unpack_from(view, cursor)
        cursor += _U8.size
        if cursor + trace_length > len(view):
            raise ComponentWireError("components frame truncated in trace id")
        try:
            trace_id = (
                bytes(view[cursor : cursor + trace_length]).decode("ascii") or None
            )
        except UnicodeDecodeError as exc:
            raise ComponentWireError(f"trace id is not ascii: {exc}") from exc
        cursor += trace_length
    if cursor + _U32.size > len(view):
        raise ComponentWireError("components frame truncated before component count")
    (count,) = _U32.unpack_from(view, cursor)
    cursor += _U32.size

    components: List[ComponentFrame] = []
    for position in range(count):
        if cursor + _U8.size > len(view):
            raise ComponentWireError(
                f"components frame truncated before entry {position}"
            )
        (key_length,) = _U8.unpack_from(view, cursor)
        cursor += _U8.size
        if cursor + key_length + _U32.size > len(view):
            raise ComponentWireError(
                f"components frame truncated in entry {position} framing"
            )
        try:
            key = bytes(view[cursor : cursor + key_length]).decode("ascii") or None
        except UnicodeDecodeError as exc:
            raise ComponentWireError(
                f"entry {position} key is not ascii: {exc}"
            ) from exc
        cursor += key_length
        (frame_length,) = _U32.unpack_from(view, cursor)
        cursor += _U32.size
        if cursor + frame_length > len(view):
            raise ComponentWireError(
                f"components frame truncated in entry {position} graph"
            )
        frame = view[cursor : cursor + frame_length]
        cursor += frame_length
        # The entry is intact (length-prefixed); a bad graph inside it fails
        # only this component.
        try:
            flat, end = FlatGraph.from_bytes(frame)
            if end != frame_length:
                raise FlatFrameError(
                    f"graph frame has {frame_length - end} trailing bytes"
                )
            components.append(ComponentFrame(key=key, flat=flat, frame=bytes(frame)))
        except FlatFrameError as exc:
            components.append(ComponentFrame(key=key, error=str(exc)))
    if cursor != len(view):
        raise ComponentWireError(
            f"components frame has {len(view) - cursor} trailing bytes"
        )
    return colors, algorithm, trace_id, components
