"""Canonical hashing of decomposition-graph components.

The component cache (:mod:`repro.runtime.cache`) must recognise a component
it has already solved even when the component reappears under different
vertex ids — the standard-cell layouts of :mod:`repro.bench` repeat the same
cell (and hence the same decomposition subgraph) many times across the die.

The canonical form used here is the **order-preserving relabeling**: vertices
are replaced by their rank in sorted-id order, and the three edge sets
(conflict, stitch, color-friendly) are rewritten over ranks and sorted.  Two
components that are isomorphic via a monotone vertex map therefore hash
identically.  Order preservation is a deliberate restriction, not a
shortcut: every color-assignment algorithm in :mod:`repro.core` iterates
``graph.vertices()`` (sorted) and breaks ties by vertex id, so a coloring
computed on the canonical graph maps back to *exactly* the coloring the
algorithm would have produced in place.  That property is what lets the
cache replay results while keeping the parallel/cached path bit-identical to
the serial one.  A stronger isomorphism-complete canonicalisation would trade
that determinism guarantee away (and cost far more per component).

Vertex weights are folded into the key because merged graphs weight their
vertices; plain construction output always has weight 1 so repeated cells
still collide.  The key also fingerprints everything else that influences the
solution: K, the algorithm name and the full :class:`AlgorithmOptions` /
:class:`DivisionOptions` field sets — changing any option invalidates the
cache by construction.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import fields
from typing import Dict, List

from repro.core.options import AlgorithmOptions, DivisionOptions
from repro.graph.decomposition_graph import DecompositionGraph
from repro.graph.flat import _le_bytes

#: Bump when the canonical payload layout changes so stale keys cannot
#: accidentally collide across versions of the hashing scheme.
#: v1 hashed a ``repr``-built string of the relabeled edge tuples; v2 streams
#: the packed little-endian flat arrays (:mod:`repro.graph.flat`) instead —
#: the same canonical relabeling, two orders of magnitude less string work.
#: v3 marks the greedy-merged ordering fix (conflict-degree order replacing
#: group-size order): solver outputs changed for some components, so pre-fix
#: cached colorings must not be replayed against the fixed solvers.
_SCHEMA_VERSION = 3

_U32 = struct.Struct("<I")


def canonical_vertex_order(graph: DecompositionGraph) -> List[int]:
    """Return the graph's vertices in canonical (sorted-id) order."""
    return graph.vertices()


def canonical_rank_map(graph: DecompositionGraph) -> Dict[int, int]:
    """Map each vertex id to its rank in the canonical order."""
    return {vertex: rank for rank, vertex in enumerate(canonical_vertex_order(graph))}


def options_fingerprint(
    algorithm_options: AlgorithmOptions, division: DivisionOptions
) -> str:
    """Return a stable fingerprint of every option that can change a solution.

    Iterates the dataclass fields by name so new options are picked up
    automatically — adding a knob can never silently alias old cache entries.
    """
    parts: List[str] = []
    for obj in (algorithm_options, division):
        for f in sorted(fields(obj), key=lambda f: f.name):
            parts.append(f"{type(obj).__name__}.{f.name}={getattr(obj, f.name)!r}")
    return ";".join(parts)


def canonical_component_key(
    graph: DecompositionGraph,
    num_colors: int,
    algorithm: str,
    algorithm_options: AlgorithmOptions,
    division: DivisionOptions,
) -> str:
    """Return the cache key of ``graph`` under the given solve configuration.

    Key equality implies the canonically-relabeled components are *equal*
    (same rank edge lists and weights) and every solve parameter matches, so
    a cached canonical coloring can be replayed through the rank map without
    re-solving.

    The key is **memoised on the graph object** (per solve configuration,
    dropped on structural mutation), so the coordinator's routing, the
    scheduler's dedup and the cache lookup hash each component once.  The
    payload streams straight out of the memoised flat-array form
    (:meth:`~repro.graph.decomposition_graph.DecompositionGraph.to_arrays`):
    a fixed header followed by the length-prefixed packed little-endian
    canonical buffers (weights, then the three rank-space edge lists).
    """
    config = (num_colors, algorithm, options_fingerprint(algorithm_options, division))
    memo = graph._key_memo
    key = memo.get(config)
    if key is not None:
        return key
    flat = graph.to_arrays()
    digest = hashlib.sha256(
        f"v{_SCHEMA_VERSION}|n={flat.num_vertices}|K={num_colors}"
        f"|alg={algorithm}|{config[2]}|".encode("utf-8")
    )
    for buf in flat.canonical_buffers():
        digest.update(_U32.pack(len(buf)))
        digest.update(_le_bytes(buf))
    key = digest.hexdigest()
    memo[config] = key
    return key
