"""Execution runtime: parallel component scheduling, memoisation, batching.

The divide stage of the paper's flow produces many independent subproblems;
this package turns that structural fact into throughput:

* :mod:`repro.runtime.hashing` — canonical, order-preserving component keys;
* :mod:`repro.runtime.cache` — :class:`ComponentCache`, replaying previously
  solved components bit-identically over a pluggable :class:`CacheBackend`
  (in-memory LRU by default);
* :mod:`repro.runtime.sqlite_cache` — :class:`SqliteBackend`, the durable
  multi-process store behind ``--cache-db`` and the decomposition server;
* :mod:`repro.runtime.scheduler` — :class:`ComponentScheduler` /
  :func:`schedule_and_color`, process-pool execution with largest-first
  ordering, deterministic merge and graceful serial fallback;
* :mod:`repro.runtime.batch` — :func:`decompose_many`, the multi-layout API
  behind the ``repro-decompose batch`` subcommand;
* :mod:`repro.runtime.wire_binary` — the binary v2 ``POST /components``
  frame over the flat-array graph form of :mod:`repro.graph.flat`;
* :mod:`repro.runtime.shm_transport` — shared-memory shipping of flat
  graph frames to worker processes (creator-unlinks lifecycle, automatic
  inline fallback).

Every path through this package preserves the exact masks, conflict counts
and stitch counts of the serial pipeline.
"""

from repro.runtime.cache import (
    CacheBackend,
    CacheStats,
    ComponentCache,
    ComponentRecord,
    InMemoryBackend,
    open_cache,
)
from repro.runtime.sqlite_cache import SqliteBackend
from repro.runtime.hashing import canonical_component_key, options_fingerprint
from repro.runtime.scheduler import (
    ComponentScheduler,
    ScheduleOutcome,
    WorkItem,
    resolve_workers,
    schedule_and_color,
)
from repro.runtime.batch import BatchItem, BatchResult, decompose_many
from repro.runtime.shm_transport import (
    SHM_MIN_FRAME_BYTES,
    ShmSegment,
    shared_memory_available,
)
from repro.runtime.wire_binary import (
    COMPONENTS_V2_CONTENT_TYPE,
    decode_components_frame,
    encode_components_frame,
)

__all__ = [
    "CacheBackend",
    "CacheStats",
    "ComponentCache",
    "ComponentRecord",
    "InMemoryBackend",
    "SqliteBackend",
    "open_cache",
    "canonical_component_key",
    "options_fingerprint",
    "ComponentScheduler",
    "ScheduleOutcome",
    "WorkItem",
    "resolve_workers",
    "schedule_and_color",
    "BatchItem",
    "BatchResult",
    "decompose_many",
    "SHM_MIN_FRAME_BYTES",
    "ShmSegment",
    "shared_memory_available",
    "COMPONENTS_V2_CONTENT_TYPE",
    "decode_components_frame",
    "encode_components_frame",
]
