"""Component-level scheduling of the divide-and-color pipeline.

Graph division (Section 4 of the paper) turns one decomposition graph into
many *independent* connected components; the serial pipeline in
:mod:`repro.core.division` colors them one after another.  This module
exploits that independence:

* each component becomes a self-contained :class:`WorkItem`;
* identical components (ubiquitous in standard-cell layouts) are deduplicated
  through the canonical hash of :mod:`repro.runtime.hashing` and optionally
  memoised across calls by a :class:`~repro.runtime.cache.ComponentCache`;
* the remaining unique components are executed across a
  ``ProcessPoolExecutor`` largest-first (the biggest component dominates the
  critical path, so it must start earliest), falling back to in-process
  serial execution when a pool cannot be created or dies mid-flight;
* results are merged deterministically: components are vertex-disjoint, so
  the merged coloring — and the summed/maxed division report — is identical
  to the serial pipeline's no matter which worker finished first.

The scheduler never changes *what* is computed, only *where*: a component is
always solved by :func:`repro.core.division.color_component`, the exact
function the serial path uses.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.division import DivisionReport, color_component
from repro.core.options import AlgorithmOptions, DivisionOptions
from repro.errors import ConfigurationError
from repro.graph.components import connected_components
from repro.graph.decomposition_graph import DecompositionGraph
from repro.runtime.cache import ComponentCache, ComponentRecord
from repro.runtime.hashing import canonical_component_key, canonical_vertex_order

#: Components at or below this vertex count are solved in-process even when a
#: pool is available: the pickling round-trip costs more than the solve.
SMALL_COMPONENT_CUTOFF = 6


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise the ``workers`` knob: ``None``/1 → serial, 0 → one per CPU."""
    if workers is None:
        return 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class WorkItem:
    """One independent component extracted from a decomposition graph."""

    index: int
    vertices: Tuple[int, ...]
    key: str

    @property
    def size(self) -> int:
        return len(self.vertices)


@dataclass
class ScheduleOutcome:
    """Everything one :meth:`ComponentScheduler.run` call produced."""

    coloring: Dict[int, int] = field(default_factory=dict)
    report: DivisionReport = field(default_factory=DivisionReport)
    solver_timeouts: int = 0
    #: Components executed in worker processes / in-process this run.
    parallel_components: int = 0
    serial_components: int = 0
    #: Components replayed from the shared cache / from an identical sibling
    #: solved in the same run.
    cache_hits: int = 0
    deduplicated_components: int = 0
    #: Pool submissions that travelled through shared-memory segments (the
    #: remainder shipped their flat frame inline through the pickle channel).
    shm_components: int = 0
    #: True when a pool was requested but had to be abandoned.
    pool_fallback: bool = False
    #: Wall seconds per pipeline stage (``divide``/``hash``/``solve``),
    #: filled by :meth:`ComponentScheduler.run` for trace spans upstream.
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def _resolve_payload_graph(graph_or_transport) -> DecompositionGraph:
    """Materialise the payload's graph from whichever transport shipped it.

    The in-process path passes the :class:`DecompositionGraph` itself; pool
    submissions ship the packed flat frame — through a shared-memory segment
    (``("shm", descriptor)``) when the host allows it, inline through the
    pickle channel (``("frame", bytes)``) otherwise.
    """
    if isinstance(graph_or_transport, DecompositionGraph):
        return graph_or_transport
    kind, payload = graph_or_transport
    if kind == "shm":
        from repro.runtime.shm_transport import read_segment

        payload = read_segment(payload)
    from repro.graph.flat import graph_from_frame

    # memoize=True: the decoded frame becomes the rebuilt graph's flat form,
    # so the worker-side hashing and solve kernels run straight off the
    # shipped buffers instead of re-flattening.
    return graph_from_frame(payload, memoize=True)


def _solve_component_job(
    payload: Tuple[object, str, int, AlgorithmOptions, DivisionOptions],
) -> Tuple[Dict[int, int], DivisionReport, int]:
    """Worker-side solve of one component (also used by the serial fallback)."""
    # Imported lazily so worker start-up does not drag the CLI/analysis stack in.
    from repro.core.decomposer import make_colorer

    graph_or_transport, algorithm, num_colors, algorithm_options, division = payload
    subgraph = _resolve_payload_graph(graph_or_transport)
    colorer = make_colorer(algorithm, num_colors, algorithm_options)
    report = DivisionReport()
    coloring = color_component(subgraph, colorer, division, report)
    return coloring, report, int(getattr(colorer, "timeouts", 0))


class ComponentScheduler:
    """Executes divided components across processes with memoisation.

    Parameters
    ----------
    algorithm / num_colors / algorithm_options / division:
        The solve configuration; identical semantics to
        :func:`repro.core.division.divide_and_color`.
    workers:
        ``None`` or ``1`` solve in-process, ``N >= 2`` use a pool of N
        processes, ``0`` means one worker per CPU.
    cache:
        Optional :class:`ComponentCache` shared across runs (and layouts).
    executor:
        Optional externally-owned pool, reused across many graphs; when given,
        ``workers`` only gates whether it is used.
    use_shared_memory:
        Ship pool submissions through ``multiprocessing.shared_memory``
        segments (default).  Hosts where segments cannot be created fall
        back automatically to inline flat frames over the pickle channel;
        ``False`` forces the inline path (diagnostics, benchmarks).
    shm_min_frame_bytes:
        Frames below this ship inline even with shared memory on (segment
        syscalls only amortise past a few KiB); ``None`` uses
        :data:`repro.runtime.shm_transport.SHM_MIN_FRAME_BYTES`.
    """

    def __init__(
        self,
        algorithm: str,
        num_colors: int,
        algorithm_options: Optional[AlgorithmOptions] = None,
        division: Optional[DivisionOptions] = None,
        workers: Optional[int] = None,
        cache: Optional[ComponentCache] = None,
        executor: Optional[ProcessPoolExecutor] = None,
        use_shared_memory: bool = True,
        shm_min_frame_bytes: Optional[int] = None,
    ) -> None:
        self.algorithm = algorithm
        self.num_colors = num_colors
        self.algorithm_options = algorithm_options or AlgorithmOptions()
        self.division = division or DivisionOptions()
        self.workers = resolve_workers(workers)
        self.cache = cache
        self.use_shared_memory = use_shared_memory
        self.shm_min_frame_bytes = shm_min_frame_bytes
        self._executor = executor
        self._owns_executor = False

    # ----------------------------------------------------------------- API
    def run(self, graph: DecompositionGraph) -> ScheduleOutcome:
        """Divide ``graph`` into components, solve them, merge the results.

        The merged coloring (and report) is bit-identical to what
        :func:`repro.core.division.divide_and_color` produces for the same
        configuration, independent of worker count, completion order and
        cache state.
        """
        import time

        outcome = ScheduleOutcome()
        outcome.report.num_vertices = graph.num_vertices
        if graph.num_vertices == 0:
            return outcome

        started = time.perf_counter()
        if self.division.independent_components:
            components = connected_components(graph)
        else:
            components = [graph.vertices()]
        outcome.report.num_connected_components = len(components)
        outcome.stage_seconds["divide"] = time.perf_counter() - started

        started = time.perf_counter()
        subgraphs, pending = self._probe_components(graph, components, outcome)
        outcome.stage_seconds["hash"] = time.perf_counter() - started
        if pending:
            started = time.perf_counter()
            self._execute(subgraphs, pending, outcome)
            outcome.stage_seconds["solve"] = time.perf_counter() - started
        return outcome

    def close(self) -> None:
        """Shut down a pool created by this scheduler (external pools are kept)."""
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown()
            self._executor = None
            self._owns_executor = False

    def __enter__(self) -> "ComponentScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ internals
    def _probe_components(
        self,
        graph: DecompositionGraph,
        components: Sequence[Sequence[int]],
        outcome: ScheduleOutcome,
    ) -> Tuple[Dict[int, DecompositionGraph], Dict[str, List[WorkItem]]]:
        """Split components into cache hits and key-grouped pending work."""
        subgraphs: Dict[int, DecompositionGraph] = {}
        pending: Dict[str, List[WorkItem]] = {}
        for index, component in enumerate(components):
            subgraph = graph.subgraph(component)
            key = canonical_component_key(
                subgraph,
                self.num_colors,
                self.algorithm,
                self.algorithm_options,
                self.division,
            )
            subgraphs[index] = subgraph
            if self.cache is not None:
                record = self.cache.lookup(key, subgraph)
                if record is not None:
                    self._apply_record(record, outcome)
                    outcome.cache_hits += 1
                    continue
            item = WorkItem(index=index, vertices=tuple(sorted(component)), key=key)
            pending.setdefault(key, []).append(item)
        return subgraphs, pending

    def _execute(
        self,
        subgraphs: Dict[int, DecompositionGraph],
        pending: Dict[str, List[WorkItem]],
        outcome: ScheduleOutcome,
    ) -> None:
        """Solve one representative per key, replay onto the duplicates."""
        # Largest-first: the biggest component bounds the parallel makespan.
        representatives = sorted(
            (group[0] for group in pending.values()),
            key=lambda item: (-item.size, item.index),
        )
        solved = self._solve_representatives(representatives, subgraphs, outcome)

        for key, group in sorted(pending.items(), key=lambda kv: kv[1][0].index):
            rep = group[0]
            coloring, report, timeouts = solved[rep.index]
            rep_record = ComponentRecord(
                coloring=coloring, report=report.component_delta(), solver_timeouts=timeouts
            )
            if self.cache is not None:
                self.cache.store(
                    key, subgraphs[rep.index], coloring, report, solver_timeouts=timeouts
                )
            self._apply_record(rep_record, outcome)
            for duplicate in group[1:]:
                # Identical components found in the same run: replay the
                # representative's solution.  Routed through the cache (when
                # one is attached) so repeated cells show up as cache hits.
                outcome.deduplicated_components += 1
                if self.cache is not None:
                    record = self.cache.lookup(key, subgraphs[duplicate.index])
                    assert record is not None  # just stored under this key
                    self._apply_record(record, outcome)
                    outcome.cache_hits += 1
                else:
                    self._apply_record(
                        _replay(rep_record, subgraphs[rep.index], subgraphs[duplicate.index]),
                        outcome,
                    )

    def _solve_representatives(
        self,
        representatives: List[WorkItem],
        subgraphs: Dict[int, DecompositionGraph],
        outcome: ScheduleOutcome,
    ) -> Dict[int, Tuple[Dict[int, int], DivisionReport, int]]:
        """Run the unique components, in a pool when one is warranted."""
        solved: Dict[int, Tuple[Dict[int, int], DivisionReport, int]] = {}
        remote = [item for item in representatives if item.size > SMALL_COMPONENT_CUTOFF]
        use_pool = self.workers >= 2 and len(remote) >= 2
        if use_pool:
            segments: List = []
            try:
                executor = self._ensure_executor()
                futures = {
                    item.index: executor.submit(
                        _solve_component_job,
                        self._remote_payload(subgraphs[item.index], segments, outcome),
                    )
                    for item in remote
                }
                for item in representatives:
                    if item.index not in futures:
                        solved[item.index] = _solve_component_job(
                            self._payload(subgraphs[item.index])
                        )
                        outcome.serial_components += 1
                for index, future in futures.items():
                    solved[index] = future.result()
                    outcome.parallel_components += 1
                return solved
            except Exception:
                # Pool creation or a worker died (sandboxed environment,
                # unpicklable payload, OOM-killed child, ...): fall back and
                # redo everything serially — correctness over speed.
                outcome.pool_fallback = True
                outcome.parallel_components = 0
                outcome.serial_components = 0
                outcome.shm_components = 0
                solved.clear()
                self.close()
            finally:
                # Creator-unlinks lifecycle: by the time control reaches
                # here every worker read has finished (results collected) or
                # been abandoned (executor shut down above), so the segments
                # can be released unconditionally.
                for segment in segments:
                    segment.unlink()
        for item in representatives:
            solved[item.index] = _solve_component_job(self._payload(subgraphs[item.index]))
            outcome.serial_components += 1
        return solved

    def _payload(self, subgraph: DecompositionGraph):
        return (
            subgraph,
            self.algorithm,
            self.num_colors,
            self.algorithm_options,
            self.division,
        )

    def _remote_payload(
        self,
        subgraph: DecompositionGraph,
        segments: List,
        outcome: ScheduleOutcome,
    ):
        """Payload for a pool submission: flat frame via shm, or inline.

        The flat frame replaces pickling the graph object either way; shared
        memory additionally keeps the frame bytes out of the executor pipe.
        Created segments are appended to ``segments`` — the caller owns
        unlinking them once the futures settle.
        """
        frame = subgraph.to_arrays().to_bytes()
        transport: object = ("frame", frame)
        if self.use_shared_memory:
            from repro.runtime.shm_transport import maybe_segment

            segment = maybe_segment(frame, self.shm_min_frame_bytes)
            if segment is not None:
                segments.append(segment)
                outcome.shm_components += 1
                transport = ("shm", segment.descriptor())
        return (
            transport,
            self.algorithm,
            self.num_colors,
            self.algorithm_options,
            self.division,
        )

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            self._owns_executor = True
        return self._executor

    @staticmethod
    def _apply_record(record: ComponentRecord, outcome: ScheduleOutcome) -> None:
        outcome.coloring.update(record.coloring)
        outcome.report.merge_from(record.report)
        outcome.solver_timeouts += record.solver_timeouts


def _replay(
    record: ComponentRecord,
    source: DecompositionGraph,
    target: DecompositionGraph,
) -> ComponentRecord:
    """Transfer a solved component onto an identical-key sibling component.

    Key equality guarantees the canonical forms are equal, so mapping colors
    rank-to-rank reproduces exactly what solving ``target`` would return.
    """
    source_order = canonical_vertex_order(source)
    by_rank = {rank: record.coloring[vertex] for rank, vertex in enumerate(source_order)}
    target_order = canonical_vertex_order(target)
    return ComponentRecord(
        coloring={vertex: by_rank[rank] for rank, vertex in enumerate(target_order)},
        report=record.report.component_delta(),
        solver_timeouts=record.solver_timeouts,
    )


def schedule_and_color(
    graph: DecompositionGraph,
    algorithm: str,
    num_colors: int,
    algorithm_options: Optional[AlgorithmOptions] = None,
    division: Optional[DivisionOptions] = None,
    workers: Optional[int] = None,
    cache: Optional[ComponentCache] = None,
    report: Optional[DivisionReport] = None,
    executor: Optional[ProcessPoolExecutor] = None,
) -> Dict[int, int]:
    """One-shot convenience wrapper: schedule, solve, merge, return colors.

    Drop-in parallel/cached counterpart of
    :func:`repro.core.division.divide_and_color`; ``report`` is filled with
    the merged division statistics when provided.
    """
    scheduler = ComponentScheduler(
        algorithm,
        num_colors,
        algorithm_options,
        division,
        workers=workers,
        cache=cache,
        executor=executor,
    )
    try:
        outcome = scheduler.run(graph)
    finally:
        scheduler.close()
    if report is not None:
        report.num_vertices = outcome.report.num_vertices
        report.num_connected_components = outcome.report.num_connected_components
        report.merge_from(outcome.report)
    return outcome.coloring
