"""SQLite-backed component cache shared across processes and restarts.

:class:`SqliteBackend` implements the :class:`~repro.runtime.cache.CacheBackend`
protocol on top of a single SQLite file, so a
:class:`~repro.runtime.cache.ComponentCache` built over it memoises solved
components *across* worker processes, server restarts and even unrelated CLI
invocations pointed at the same ``--cache-db``.  This is the durable half of
the ROADMAP's "solve each standard cell once" goal: the in-memory LRU dies
with its process, the SQLite store does not.

Design notes
------------

* **WAL mode** — ``PRAGMA journal_mode=WAL`` lets concurrent reader
  processes proceed while one writer commits; every operation runs in its
  own short transaction with a generous busy timeout, which is all a
  decomposition-farm access pattern (many small independent rows) needs.
* **Versioned schema** — the on-disk layout is stamped with
  :data:`SCHEMA_VERSION`; opening a file written by a different version
  drops and recreates the tables rather than misreading old payloads.  The
  component *keys* already fingerprint the hashing scheme and every solve
  option, so entries can never be wrongly shared across configurations.
* **Corruption recovery** — a file that is not a SQLite database (truncated,
  overwritten, garbage) is detected on open, deleted (together with its
  ``-wal``/``-shm`` sidecars) and rebuilt empty.  A cache must never be the
  reason a decomposition fails.
* **LRU eviction** — ``last_used`` holds a monotone logical clock (a counter
  row, not wall time, so concurrent processes cannot tie); when
  ``max_entries`` is set, the oldest rows beyond the bound are deleted on
  insert.
* **Persistent counters** — cumulative hits/misses/stores/evictions live in
  the database itself, so the server's ``GET /stats`` can report cache
  effectiveness aggregated over *all* worker processes, and tests can verify
  that a restarted server really reused its predecessor's entries.

Records are stored in canonical rank space as JSON, mirroring
:class:`~repro.runtime.cache.ComponentRecord`; replay through the rank map is
the frontend's job, so SQLite-cached solves stay bit-identical to fresh ones.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import fields
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.division import DivisionReport
from repro.runtime.cache import ComponentRecord, _shape_matches

#: Bump when the table layout, the JSON payload format, or the canonical
#: hashing scheme feeding the keys changes; mismatched stores are dropped and
#: rebuilt on open.  v2: component keys moved to the packed-array hashing
#: scheme (``repro.runtime.hashing._SCHEMA_VERSION == 2``) — v1 rows are keyed
#: by digests no current caller can ever look up, so they are dead weight and
#: are dropped wholesale here rather than aged out one eviction at a time.
#: v3: solver outputs changed (greedy-merged ordering fix), and the hashing
#: schema moved to v3 with it — stale rows would replay pre-fix colorings.
SCHEMA_VERSION = 3

#: Seconds a writer waits on a locked database before giving up.
BUSY_TIMEOUT_SECONDS = 30.0


def _encode_record(record: ComponentRecord) -> str:
    """Serialise a canonical-rank record to the JSON payload format."""
    # Rank colorings are dense 0..n-1 by construction, so a plain list is
    # enough (and keeps JSON keys from becoming strings).
    colors = [record.coloring[rank] for rank in range(len(record.coloring))]
    report = {f.name: getattr(record.report, f.name) for f in fields(DivisionReport)}
    payload = {"colors": colors, "report": report, "timeouts": record.solver_timeouts}
    if record.shape is not None:
        payload["shape"] = list(record.shape)
    return json.dumps(payload, separators=(",", ":"))


def _decode_record(payload: str) -> ComponentRecord:
    data = json.loads(payload)
    shape = data.get("shape")
    return ComponentRecord(
        coloring={rank: color for rank, color in enumerate(data["colors"])},
        report=DivisionReport(**data["report"]),
        solver_timeouts=data["timeouts"],
        shape=tuple(shape) if shape is not None else None,
    )


class SqliteBackend:
    """Durable, multi-process :class:`CacheBackend` over one SQLite file.

    Parameters
    ----------
    path:
        Database file; created (with parent directories) when missing.
    max_entries:
        Upper bound on stored components shared by every process using the
        file; ``None`` means unbounded.
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.path = Path(path)
        self.max_entries = max_entries
        # One connection per backend, shared across threads of this process
        # under a lock (the server's inline pool mode runs jobs on executor
        # threads); other processes open their own backend over the file.
        self._lock = threading.RLock()
        self._conn = self._open()

    # ------------------------------------------------------------ lifecycle
    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            return self._connect_and_migrate()
        except sqlite3.DatabaseError:
            # Not a database / unreadable header / corrupted pages: rebuild
            # fresh.  Losing cache entries is always safe — they are pure
            # memoisation.
            self._remove_database_files()
            return self._connect_and_migrate()

    def _connect_and_migrate(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path), timeout=BUSY_TIMEOUT_SECONDS, check_same_thread=False
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            with conn:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
                )
                row = conn.execute(
                    "SELECT value FROM meta WHERE key = 'schema_version'"
                ).fetchone()
                if row is not None and row[0] != str(SCHEMA_VERSION):
                    # Written by another version of this module: drop the
                    # payload tables, keep the file.
                    conn.execute("DROP TABLE IF EXISTS components")
                    conn.execute("DROP TABLE IF EXISTS counters")
                    row = None
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS components ("
                    " key TEXT PRIMARY KEY,"
                    " payload TEXT NOT NULL,"
                    " last_used INTEGER NOT NULL)"
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_components_last_used"
                    " ON components(last_used)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS counters "
                    "(name TEXT PRIMARY KEY, value INTEGER NOT NULL)"
                )
                if row is None:
                    conn.execute(
                        "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                        ("schema_version", str(SCHEMA_VERSION)),
                    )
            # A corrupted file can open fine and fail later; probe the pages
            # that matter now so recovery happens in one place.
            conn.execute("SELECT COUNT(*) FROM components").fetchone()
            return conn
        except sqlite3.DatabaseError:
            conn.close()
            raise

    def _remove_database_files(self) -> None:
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except FileNotFoundError:
                pass

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------- protocol
    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM components").fetchone()[0]

    def get(
        self, key: str, expected_shape: Optional[tuple] = None
    ) -> Optional[ComponentRecord]:
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT payload FROM components WHERE key = ?", (key,)
            ).fetchone()
            record = None
            if row is not None:
                try:
                    record = _decode_record(row[0])
                except (ValueError, KeyError, TypeError):
                    # Damaged payload (torn write, manual edit): the cache
                    # must never fail a decomposition — drop the row and
                    # treat it as a miss so the component is re-solved.
                    self._conn.execute(
                        "DELETE FROM components WHERE key = ?", (key,)
                    )
                if record is not None and not _shape_matches(record, expected_shape):
                    # Wrong shape under a (possibly untrusted) key: a miss.
                    # The row itself is legitimate — keep it, but neither
                    # count a hit nor refresh its LRU slot.
                    record = None
            if record is None:
                self._bump_locked("misses")
                return None
            self._conn.execute(
                "UPDATE components SET last_used = ? WHERE key = ?",
                (self._tick_locked(), key),
            )
            self._bump_locked("hits")
        return record

    def put(self, key: str, record: ComponentRecord) -> int:
        payload = _encode_record(record)
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO components (key, payload, last_used) "
                "VALUES (?, ?, ?)",
                (key, payload, self._tick_locked()),
            )
            self._bump_locked("stores")
            evicted = 0
            if self.max_entries is not None:
                total = self._conn.execute(
                    "SELECT COUNT(*) FROM components"
                ).fetchone()[0]
                excess = total - self.max_entries
                if excess > 0:
                    self._conn.execute(
                        "DELETE FROM components WHERE key IN ("
                        " SELECT key FROM components"
                        " ORDER BY last_used ASC, key ASC LIMIT ?)",
                        (excess,),
                    )
                    self._bump_locked("evictions", excess)
                    evicted = excess
        return evicted

    def clear(self) -> None:
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM components")

    # ------------------------------------------------------------- counters
    def _tick_locked(self) -> int:
        """Advance and return the shared logical clock (caller holds txn)."""
        self._conn.execute(
            "INSERT INTO counters (name, value) VALUES ('clock', 1) "
            "ON CONFLICT(name) DO UPDATE SET value = value + 1"
        )
        return self._conn.execute(
            "SELECT value FROM counters WHERE name = 'clock'"
        ).fetchone()[0]

    def _bump_locked(self, name: str, amount: int = 1) -> None:
        self._conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
            (name, amount),
        )

    def persistent_stats(self) -> Dict[str, int]:
        """Cumulative counters aggregated over every process ever attached.

        Unlike :attr:`ComponentCache.stats` (per-frontend, in-memory), these
        live in the database: the server's ``/stats`` endpoint reads them to
        report cache effectiveness across its whole worker pool, and across
        restarts.
        """
        with self._lock:
            rows = dict(
                self._conn.execute(
                    "SELECT name, value FROM counters WHERE name != 'clock'"
                ).fetchall()
            )
            entries = self._conn.execute(
                "SELECT COUNT(*) FROM components"
            ).fetchone()[0]
        return {
            "hits": rows.get("hits", 0),
            "misses": rows.get("misses", 0),
            "stores": rows.get("stores", 0),
            "evictions": rows.get("evictions", 0),
            "entries": entries,
        }


def read_persistent_stats(path: Union[str, Path]) -> Optional[Dict[str, int]]:
    """Read the cumulative counters of a cache database without keeping it open.

    Returns ``None`` when the file does not exist yet (or cannot be read as a
    cache database).  Used by the server's main process — a monitoring path,
    so the connection is **read-only**: unlike :class:`SqliteBackend`, a
    corrupt-looking file is reported as absent rather than deleted and
    rebuilt.  Destroying the store the workers are actively writing to is
    never an acceptable side effect of a ``/stats`` call.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        conn = sqlite3.connect(
            f"file:{path}?mode=ro", uri=True, timeout=BUSY_TIMEOUT_SECONDS
        )
        try:
            rows = dict(
                conn.execute(
                    "SELECT name, value FROM counters WHERE name != 'clock'"
                ).fetchall()
            )
            entries = conn.execute("SELECT COUNT(*) FROM components").fetchone()[0]
        finally:
            conn.close()
    except sqlite3.Error:
        return None
    return {
        "hits": rows.get("hits", 0),
        "misses": rows.get("misses", 0),
        "stores": rows.get("stores", 0),
        "evictions": rows.get("evictions", 0),
        "entries": entries,
    }
