"""Shared-memory transport of flat-graph frames to worker processes.

Submitting a component to a ``ProcessPoolExecutor`` used to pickle the whole
:class:`~repro.graph.decomposition_graph.DecompositionGraph` object graph —
per-vertex ``VertexData`` instances, adjacency sets, edge sets — through the
executor's pipe.  The flat-array form makes a better boundary: the parent
writes the packed frame into one ``multiprocessing.shared_memory`` block and
pickles only a tiny ``{name, size}`` descriptor; the worker attaches, decodes
straight out of the mapping, and detaches.  The frame bytes cross the kernel
once (into the segment) instead of twice (into and out of a pipe), and the
pickling machinery never walks an object graph at all.

Lifecycle is strictly **creator-unlinks**: the submitting process owns the
segment and unlinks it when the job's future settles (result, error or
cancellation) — the worker only ever attaches and closes.  Workers attach
while the parent is still awaiting the future, so the segment always outlives
its one read.

Environments without a usable ``/dev/shm`` (locked-down sandboxes) are
detected by :func:`shared_memory_available` — a one-time probe — and callers
fall back to shipping the frame bytes inline through the normal pickle
channel, which preserves correctness and still skips object-graph pickling.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.hist import Histogram

#: Latency of writing a frame into a fresh segment / reading one back,
#: process-wide (each worker process sees only its own reads).
WRITE_HISTOGRAM = Histogram()
READ_HISTOGRAM = Histogram()

#: Frames smaller than this ship inline through the pickle channel even when
#: shared memory works: a segment costs a handful of syscalls (shm_open,
#: ftruncate, mmap, unlink) that only amortise once the payload outweighs
#: them.  Measured crossover on this class of hardware is a few KiB.
SHM_MIN_FRAME_BYTES = 8192

#: Probe result cache (``None`` = not probed yet).
_available: Optional[bool] = None


def shared_memory_available() -> bool:
    """Return True when the shared-memory transport works here (cached).

    The probe performs the transport's exact roundtrip — create a real
    segment, read it back through :func:`read_segment`, unlink — so both a
    sandbox that forbids ``shm_open`` *and* a platform whose segments are
    not reachable the way the reader reaches them report unavailable (and
    callers fall back to inline frames).
    """
    global _available
    if _available is None:
        try:
            payload = b"repro-shm-probe"
            segment = ShmSegment(payload)
            try:
                _available = read_segment(segment.descriptor()) == payload
            finally:
                segment.unlink()
        except Exception:
            _available = False
    return _available


class ShmSegment:
    """One creator-owned shared-memory block holding a payload of bytes."""

    __slots__ = ("_shm", "name", "size")

    def __init__(self, payload: bytes) -> None:
        from multiprocessing import shared_memory

        started = time.perf_counter()
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        self._shm.buf[: len(payload)] = payload
        self.name = self._shm.name
        self.size = len(payload)
        WRITE_HISTOGRAM.observe(time.perf_counter() - started)

    def descriptor(self) -> Dict[str, object]:
        """The picklable reference a worker resolves with :func:`read_segment`."""
        return {"name": self.name, "size": self.size}

    def unlink(self) -> None:
        """Release the segment (idempotent); the creator's responsibility."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def maybe_segment(frame: bytes, threshold: Optional[int] = None) -> Optional["ShmSegment"]:
    """Apply the transport policy to one frame: a segment, or ``None``.

    The single owner of "when does a frame ride shared memory": the frame
    must reach the size threshold (``None`` = :data:`SHM_MIN_FRAME_BYTES`),
    the host must pass the availability probe, and any segment-creation
    failure (e.g. a full ``/dev/shm`` mid-run) silently keeps the inline
    path — transport is an optimisation, never a correctness concern.
    Callers own unlinking a returned segment once their job settles.
    """
    limit = SHM_MIN_FRAME_BYTES if threshold is None else threshold
    if len(frame) < limit or not shared_memory_available():
        return None
    try:
        return ShmSegment(frame)
    except Exception:
        return None


def read_segment(descriptor: Dict) -> bytes:
    """Read a segment's payload by descriptor (runs in the worker).

    Deliberately *not* ``SharedMemory(name=...)``: on Python < 3.13
    attaching registers the segment with the attacher's resource tracker,
    which then either double-unregisters against the creator (same-process
    reads, KeyError noise in the tracker) or "cleans up" a segment the
    creator already unlinked (cross-process reads, leak warnings at exit).
    POSIX shared memory is name-addressable as a plain file under the shm
    filesystem, so the reader opens exactly that — no mapping to manage, no
    tracker involvement, one copy out.  :func:`shared_memory_available`
    probes this exact path, so platforms where segments are not reachable
    this way fall back to inline frames before a worker ever gets here.
    """
    started = time.perf_counter()
    name = str(descriptor["name"])
    with open(f"/dev/shm/{name.lstrip('/')}", "rb") as handle:
        payload = handle.read(int(descriptor["size"]))
    READ_HISTOGRAM.observe(time.perf_counter() - started)
    return payload
