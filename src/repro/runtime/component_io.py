"""JSON wire schema of one decomposition-graph component.

The cluster's unit of work is a single divided component (the same unit the
process scheduler of :mod:`repro.runtime.scheduler` ships to worker
processes), so this module is the component-level counterpart of
:mod:`repro.service.protocol`: one owner for the request/response shapes
that cross the coordinator → node HTTP boundary.

Request (``POST /component``)::

    {
      "graph": {
        "version": 1,
        "vertices": [[id, shape_id, fragment, weight], ...],
        "conflict_edges": [[u, v], ...],
        "stitch_edges":   [[u, v], ...],
        "friend_edges":   [[u, v], ...]
      },
      "colors": 4,
      "algorithm": "sdp-backtrack"
    }

Response::

    {
      "key": "<canonical component hash>",
      "vertices": n,
      "cache_hit": true,
      "coloring": [c0, c1, ...],      # canonical *rank* space
      "report": {... DivisionReport delta ...},
      "solver_timeouts": 0
    }

Micro-batch (``POST /components``) — many components of one layout in a
single node round trip (the coordinator's hot path; HTTP overhead is
amortised across the batch)::

    {
      "components": [{"graph": {...}}, ...],
      "colors": 4,
      "algorithm": "sdp-backtrack"
    }

Batch response, ``results`` aligned index-for-index with ``components``;
each entry is either a component response (above) or a per-component error
envelope, so one bad component never poisons its batch siblings::

    {"results": [{...component response...},
                 {"error": {"status": 422, "message": "..."}}, ...]}

The coloring travels in canonical rank space (rank = position in sorted
vertex-id order), exactly how the component cache stores records: the
coordinator replays it onto its own vertex ids through the rank map, and —
because the canonical relabeling is order-preserving and every colorer is
equivariant under it (see :mod:`repro.runtime.hashing`) — the replayed
coloring is bit-identical to solving the component locally.  That property
is what lets a cluster answer byte-for-byte like a single
:class:`~repro.core.decomposer.Decomposer`.

Solve parameters stay scalar (``colors``/``algorithm``): both sides expand
them through the same preset tables, so the canonical cache key computed by
the node always matches the one the coordinator routed on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.division import DivisionReport
from repro.core.options import DecomposerOptions
from repro.errors import ReproError
from repro.graph.decomposition_graph import DecompositionGraph, VertexData
from repro.runtime.cache import ComponentCache
from repro.runtime.hashing import canonical_component_key, canonical_vertex_order

#: Bump when the graph wire layout changes (checked by :func:`graph_from_wire`).
GRAPH_WIRE_VERSION = 1

#: DivisionReport counters that cross the wire (the per-component delta).
_REPORT_FIELDS = (
    "peeled_vertices",
    "num_biconnected_blocks",
    "num_ghtree_parts",
    "colored_pieces",
    "largest_colored_piece",
)


class ComponentWireError(ReproError):
    """Raised for malformed component requests/responses (HTTP 400)."""


def options_for(colors: int, algorithm: str) -> DecomposerOptions:
    """Expand wire-level solve scalars into full :class:`DecomposerOptions`.

    **The single preset mapping in the codebase**: the coordinator (routing),
    the nodes (solving) and :func:`repro.service.protocol.build_options`
    (whole-layout requests) all delegate here, so the algorithm/division
    option sets — and therefore the canonical component keys — can never
    diverge between the routing side and the solving side.
    """
    if not isinstance(colors, int) or isinstance(colors, bool):
        raise ComponentWireError(f"'colors' must be an integer, got {colors!r}")
    if algorithm not in DecomposerOptions.KNOWN_ALGORITHMS:
        raise ComponentWireError(
            f"unknown algorithm {algorithm!r}; "
            f"known: {sorted(DecomposerOptions.KNOWN_ALGORITHMS)}"
        )
    try:
        if colors == 4:
            options = DecomposerOptions.for_quadruple_patterning(algorithm)
        elif colors == 5:
            options = DecomposerOptions.for_pentuple_patterning(algorithm)
        else:
            options = DecomposerOptions.for_k_patterning(colors, algorithm)
        options.validate()
    except ReproError as exc:
        raise ComponentWireError(str(exc)) from exc
    return options


# --------------------------------------------------------------------- graph
def graph_to_wire(graph: DecompositionGraph) -> Dict:
    """Serialise ``graph`` to the JSON-level wire dict."""
    vertices = []
    for vertex in graph.vertices():
        data = graph.vertex_data(vertex)
        vertices.append([vertex, data.shape_id, data.fragment, data.weight])
    return {
        "version": GRAPH_WIRE_VERSION,
        "vertices": vertices,
        "conflict_edges": [list(edge) for edge in graph.conflict_edges()],
        "stitch_edges": [list(edge) for edge in graph.stitch_edges()],
        "friend_edges": [list(edge) for edge in graph.friend_edges()],
    }


def wire_dict_from_flat(flat) -> Dict:
    """Build the JSON v1 wire dict straight from a flat-array graph.

    The JSON fallback path of a binary-first coordinator: when a peer node
    only speaks the v1 schema, the already-flattened component is re-encoded
    without rebuilding a :class:`DecompositionGraph` first.  Output is
    byte-identical to ``graph_to_wire(flat.to_graph())`` — the flat form's
    rank order *is* sorted-id order and its edge lists are sorted rank
    pairs, which map monotonically back to sorted id pairs.
    """
    ids = flat.vertex_ids
    vertices = [
        [
            ids[rank],
            None if flat.shape_ids[rank] == -1 else flat.shape_ids[rank],
            flat.fragments[rank],
            flat.weights[rank],
        ]
        for rank in range(len(ids))
    ]

    def edges_to_wire(edges) -> List[List[int]]:
        return [
            [ids[edges[i]], ids[edges[i + 1]]] for i in range(0, len(edges), 2)
        ]

    return {
        "version": GRAPH_WIRE_VERSION,
        "vertices": vertices,
        "conflict_edges": edges_to_wire(flat.conflict_edges),
        "stitch_edges": edges_to_wire(flat.stitch_edges),
        "friend_edges": edges_to_wire(flat.friend_edges),
    }


#: Value bounds of the flat-array form: ids/shape ids must fit int64, counts
#: must fit uint32.  Enforced at the wire boundary so an out-of-range value
#: is a 400 at decode time, never an OverflowError deep inside ``to_arrays``
#: (and so a wire ``shape_id`` can never collide with the flat form's ``-1``
#: none-sentinel).
_MAX_ID = 2**63 - 1
_MAX_COUNT = 2**32 - 1


def _checked(value, low: int, high: int, what: str) -> int:
    number = int(value)
    if not low <= number <= high:
        raise ComponentWireError(f"{what} {number} outside [{low}, {high}]")
    return number


def graph_from_wire(payload: Dict) -> DecompositionGraph:
    """Rebuild a :class:`DecompositionGraph` from its wire dict."""
    if not isinstance(payload, dict):
        raise ComponentWireError("'graph' must be a JSON object")
    version = payload.get("version")
    if version != GRAPH_WIRE_VERSION:
        raise ComponentWireError(
            f"unsupported graph wire version {version!r} "
            f"(this node speaks version {GRAPH_WIRE_VERSION})"
        )
    graph = DecompositionGraph()
    try:
        for vertex, shape_id, fragment, weight in payload["vertices"]:
            graph.add_vertex(
                _checked(vertex, 0, _MAX_ID, "vertex id"),
                VertexData(
                    shape_id=(
                        None
                        if shape_id is None
                        else _checked(shape_id, 0, _MAX_ID, "shape_id")
                    ),
                    fragment=_checked(fragment, 0, _MAX_COUNT, "fragment"),
                    weight=_checked(weight, 0, _MAX_COUNT, "weight"),
                ),
            )
        for u, v in payload.get("conflict_edges", ()):
            graph.add_conflict_edge(int(u), int(v))
        for u, v in payload.get("stitch_edges", ()):
            graph.add_stitch_edge(int(u), int(v))
        for u, v in payload.get("friend_edges", ()):
            graph.add_friend_edge(int(u), int(v))
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        raise ComponentWireError(f"invalid 'graph' payload: {exc}") from exc
    return graph


# ------------------------------------------------------------------- request
def component_request(graph: DecompositionGraph, colors: int, algorithm: str) -> Dict:
    """Build one ``POST /component`` request payload."""
    return {"graph": graph_to_wire(graph), "colors": colors, "algorithm": algorithm}


def validate_component_request(payload: Dict) -> None:
    """Cheap structural validation run in the node's server process.

    Catches client mistakes at the door (HTTP 400) without paying for a full
    graph rebuild on the server side — the worker that solves the job does
    the authoritative decode.
    """
    if not isinstance(payload, dict):
        raise ComponentWireError("request body must be a JSON object")
    options_for(payload.get("colors", 4), payload.get("algorithm", "sdp-backtrack"))
    graph = payload.get("graph")
    if not isinstance(graph, dict):
        raise ComponentWireError("'graph' must be a JSON object")
    if graph.get("version") != GRAPH_WIRE_VERSION:
        raise ComponentWireError(
            f"unsupported graph wire version {graph.get('version')!r}"
        )
    vertices = graph.get("vertices")
    if not isinstance(vertices, list):
        raise ComponentWireError("'graph.vertices' must be an array")
    try:
        known = {int(entry[0]) for entry in vertices}
    except (TypeError, ValueError, IndexError) as exc:
        raise ComponentWireError(f"invalid 'graph.vertices' entries: {exc}") from exc
    for edge_set in ("conflict_edges", "stitch_edges", "friend_edges"):
        edges = graph.get(edge_set, [])
        if not isinstance(edges, list):
            raise ComponentWireError(f"'graph.{edge_set}' must be an array")
        for edge in edges:
            if (
                not isinstance(edge, (list, tuple))
                or len(edge) != 2
                or edge[0] not in known
                or edge[1] not in known
            ):
                raise ComponentWireError(
                    f"'graph.{edge_set}' entry {edge!r} does not join known vertices"
                )


# -------------------------------------------------------------- micro-batch
def components_request(
    graphs: List[Dict],
    colors: int,
    algorithm: str,
    keys: Optional[List[Optional[str]]] = None,
    trace_id: Optional[str] = None,
) -> Dict:
    """Build one ``POST /components`` request from pre-serialised graph wires.

    ``graphs`` are :func:`graph_to_wire` dicts — the coordinator serialises
    each distinct component once and reuses the wire across re-routes, so
    this function only wraps them in the batch envelope.  ``keys`` optionally
    attaches each component's canonical cache key so a v2 node skips
    re-hashing; ``trace_id`` threads the coordinator's trace through the
    JSON wire (pre-v2 nodes ignore both extra fields).
    """
    entries: List[Dict] = []
    for position, wire in enumerate(graphs):
        entry: Dict = {"graph": wire}
        if keys is not None and keys[position]:
            entry["key"] = keys[position]
        entries.append(entry)
    payload = {"components": entries, "colors": colors, "algorithm": algorithm}
    if trace_id:
        payload["trace_id"] = trace_id
    return payload


class ComponentErrorEntry:
    """One failed entry of a ``POST /components`` response (coordinator side)."""

    __slots__ = ("status", "message")

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentErrorEntry(status={self.status}, message={self.message!r})"


def component_error_entry(status: int, message: str) -> Dict:
    """Encode one per-component error envelope (node side)."""
    return {"error": {"status": int(status), "message": str(message)}}


def parse_components_response(payload: Dict) -> List[object]:
    """Validate one batch response into per-entry outcomes.

    Returns a list aligned with the request's ``components``: each element
    is a :class:`ComponentSolve` or a :class:`ComponentErrorEntry`.  A
    malformed *entry* becomes an error entry (it fails only its layout); a
    malformed *envelope* raises :class:`ComponentWireError`.
    """
    if not isinstance(payload, dict):
        raise ComponentWireError("components response must be a JSON object")
    results = payload.get("results")
    if not isinstance(results, list):
        raise ComponentWireError("'results' must be an array")
    outcomes: List[object] = []
    for position, entry in enumerate(results):
        if isinstance(entry, dict) and "error" in entry:
            error = entry["error"] if isinstance(entry["error"], dict) else {}
            outcomes.append(
                ComponentErrorEntry(
                    status=int(error.get("status", 500)),
                    message=str(error.get("message", "component failed")),
                )
            )
            continue
        try:
            outcomes.append(parse_component_response(entry))
        except ComponentWireError as exc:
            outcomes.append(
                ComponentErrorEntry(
                    status=502, message=f"results[{position}] malformed: {exc}"
                )
            )
    return outcomes


# ------------------------------------------------------------------ response
def report_to_wire(report: DivisionReport) -> Dict[str, int]:
    """Serialise a per-component :class:`DivisionReport` delta."""
    return {name: getattr(report, name) for name in _REPORT_FIELDS}


def report_from_wire(payload: Dict) -> DivisionReport:
    """Rebuild a per-component :class:`DivisionReport` delta."""
    if not isinstance(payload, dict):
        raise ComponentWireError("'report' must be a JSON object")
    try:
        return DivisionReport(**{name: int(payload[name]) for name in _REPORT_FIELDS})
    except (KeyError, TypeError, ValueError) as exc:
        raise ComponentWireError(f"invalid 'report' payload: {exc}") from exc


class ComponentSolve:
    """One parsed ``POST /component`` response (coordinator side)."""

    __slots__ = ("key", "ranks", "report", "solver_timeouts", "cache_hit")

    def __init__(
        self,
        key: str,
        ranks: List[int],
        report: DivisionReport,
        solver_timeouts: int,
        cache_hit: bool,
    ) -> None:
        self.key = key
        self.ranks = ranks
        self.report = report
        self.solver_timeouts = solver_timeouts
        self.cache_hit = cache_hit

    def coloring_for(self, graph: DecompositionGraph) -> Dict[int, int]:
        """Replay the rank-space coloring onto ``graph``'s own vertex ids.

        Valid for any component with the same canonical key as the one that
        was solved — the same replay rule the component cache uses.
        """
        order = canonical_vertex_order(graph)
        if len(order) != len(self.ranks):
            raise ComponentWireError(
                f"component response colors {len(self.ranks)} vertices, "
                f"local component has {len(order)}"
            )
        return {vertex: self.ranks[rank] for rank, vertex in enumerate(order)}


def parse_component_response(payload: Dict) -> ComponentSolve:
    """Validate one component response into a :class:`ComponentSolve`."""
    if not isinstance(payload, dict):
        raise ComponentWireError("component response must be a JSON object")
    ranks = payload.get("coloring")
    if not isinstance(ranks, list) or not all(isinstance(c, int) for c in ranks):
        raise ComponentWireError("'coloring' must be an array of integers")
    key = payload.get("key")
    if not isinstance(key, str):
        raise ComponentWireError(f"'key' must be a string, got {key!r}")
    return ComponentSolve(
        key=key,
        ranks=ranks,
        report=report_from_wire(payload.get("report", {})),
        solver_timeouts=int(payload.get("solver_timeouts", 0)),
        cache_hit=bool(payload.get("cache_hit", False)),
    )


# --------------------------------------------------------------- node worker
def job_graph(job: Dict) -> DecompositionGraph:
    """Materialise the job's component graph from whichever transport it used.

    A component job carries exactly one of: ``graph`` (the JSON v1 wire
    dict), ``graph_frame`` (packed flat-graph frame bytes, the binary wire
    and the pickle fallback), or ``graph_shm`` (a shared-memory descriptor
    from :mod:`repro.runtime.shm_transport`, the zero-copy process-pool
    path).
    """
    from repro.graph.flat import FlatFrameError, graph_from_frame

    descriptor = job.get("graph_shm")
    frame = job.get("graph_frame")
    if descriptor is not None:
        from repro.runtime.shm_transport import read_segment

        frame = read_segment(descriptor)
    if frame is not None:
        try:
            # memoize=True: node workers hash and solve straight off the
            # shipped canonical buffers (no re-flattening on the hot path).
            return graph_from_frame(frame, memoize=True)
        except FlatFrameError as exc:
            raise ComponentWireError(f"invalid 'graph_frame' payload: {exc}") from exc
    return graph_from_wire(job["graph"])


def solve_component_job(job: Dict, cache: Optional[ComponentCache]) -> Dict:
    """Execute one component job inside a node worker.

    Consults the worker's component cache first (this is the cache-affinity
    payoff: any coordinator routing canonical key H here finds the entry a
    previous request stored), solves on a miss via the exact
    :func:`~repro.core.division.color_component` path the serial pipeline
    uses, and encodes the response in canonical rank space.

    A ``key`` shipped with the job (the coordinator's routing hash) is used
    for the cache *lookup* — hashing schemes are versioned together, so a
    v2 peer's key is exactly what this worker would recompute, and the hit
    path (the affinity payoff) skips hashing entirely.  Cache *stores*
    always use a locally computed key: the request boundary is untrusted,
    and storing a solution under a caller-controlled key would let one bad
    request durably poison the shared cache for every later one.  The
    defensive re-hash only happens on the miss path, where the solve it
    precedes dwarfs it.
    """
    import time

    graph = job_graph(job)
    colors = job.get("colors", 4)
    algorithm = job.get("algorithm", "sdp-backtrack")
    options = options_for(colors, algorithm)

    def local_key() -> str:
        return canonical_component_key(
            graph, colors, algorithm, options.algorithm_options, options.division
        )

    key = job.get("key") or local_key()
    lookup_started = time.perf_counter()
    record = cache.lookup(key, graph) if cache is not None else None
    if record is None and cache is not None and job.get("key"):
        # The shipped key missed (cold cache — or a key that does not match
        # this graph).  Fall back to the authoritative local key before
        # paying for a solve; from here on `key` is trusted.
        key = local_key()
        if key != job["key"]:
            record = cache.lookup(key, graph)
    lookup_seconds = time.perf_counter() - lookup_started
    cache_hit = record is not None
    solve_seconds = 0.0
    if record is not None:
        coloring = record.coloring
        report = record.report
        solver_timeouts = record.solver_timeouts
    else:
        from repro.core.decomposer import make_colorer
        from repro.core.division import color_component

        colorer = make_colorer(algorithm, colors, options.algorithm_options)
        report = DivisionReport()
        solve_started = time.perf_counter()
        coloring = color_component(graph, colorer, options.division, report)
        solve_seconds = time.perf_counter() - solve_started
        report = report.component_delta()
        solver_timeouts = int(getattr(colorer, "timeouts", 0))
        if cache is not None:
            cache.store(key, graph, coloring, report, solver_timeouts=solver_timeouts)
    order = canonical_vertex_order(graph)
    # "timings" is node-local observability: the server feeds it into its
    # stage histograms and trace spans, then strips it before encoding the
    # wire response, so response bytes are identical with tracing on or off.
    return {
        "key": key,
        "vertices": graph.num_vertices,
        "cache_hit": cache_hit,
        "coloring": [coloring[vertex] for vertex in order],
        "report": report_to_wire(report),
        "solver_timeouts": solver_timeouts,
        "timings": {"cache_lookup": lookup_seconds, "solve": solve_seconds},
    }
