"""Batch decomposition of many layouts with shared workers and cache.

``decompose_many`` is the high-throughput entry point the ROADMAP's
production goal asks for: it decomposes a whole list of layouts with one
worker pool (spun up once, reused for every layout) and one
:class:`~repro.runtime.cache.ComponentCache` (so a cell repeated across
layouts — the normal case for standard-cell designs — is solved exactly
once).  Per-layout results are ordinary
:class:`~repro.core.decomposer.DecompositionResult` objects, bit-identical to
what a serial :meth:`Decomposer.decompose` call would return.

::

    from repro.runtime import decompose_many

    batch = decompose_many({"cellA": layout_a, "cellB": layout_b}, workers=4)
    for item in batch.items:
        print(item.name, item.result.solution.summary())
    print(batch.aggregate_summary())
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.decomposer import Decomposer, DecompositionResult
from repro.core.options import DecomposerOptions
from repro.geometry.layout import Layout
from repro.runtime.cache import CacheStats, ComponentCache
from repro.runtime.scheduler import resolve_workers

#: Accepted layout collections: a sequence of layouts (named after
#: ``Layout.name``), a sequence of (name, layout) pairs, or a name->layout map.
LayoutsInput = Union[
    Sequence[Layout],
    Sequence[Tuple[str, Layout]],
    Mapping[str, Layout],
]


@dataclass
class BatchItem:
    """One layout's slot in a batch result."""

    name: str
    result: DecompositionResult
    seconds: float

    def summary(self) -> str:
        return f"{self.name}: {self.result.solution.summary()}"


@dataclass
class BatchResult:
    """Everything :func:`decompose_many` produced."""

    items: List[BatchItem] = field(default_factory=list)
    workers: int = 1
    total_seconds: float = 0.0
    cache_stats: Optional[CacheStats] = None

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.items)

    def item(self, name: str) -> BatchItem:
        for entry in self.items:
            if entry.name == name:
                return entry
        raise KeyError(f"no batch item named {name!r}")

    def total_conflicts(self) -> int:
        return sum(entry.result.solution.conflicts for entry in self.items)

    def total_stitches(self) -> int:
        return sum(entry.result.solution.stitches for entry in self.items)

    def aggregate_summary(self) -> str:
        """One-line roll-up across every layout in the batch."""
        line = (
            f"batch: {len(self.items)} layouts, "
            f"conflicts={self.total_conflicts()} stitches={self.total_stitches()} "
            f"workers={self.workers} wall={self.total_seconds:.3f}s"
        )
        if self.cache_stats is not None and self.cache_stats.lookups:
            line += f" | {self.cache_stats.summary()}"
        return line

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serialisable report (used by ``repro-decompose batch --json``)."""
        payload: Dict[str, object] = {
            "layouts": [
                {
                    "name": entry.name,
                    "algorithm": entry.result.solution.algorithm,
                    "num_colors": entry.result.solution.num_colors,
                    "conflicts": entry.result.solution.conflicts,
                    "stitches": entry.result.solution.stitches,
                    "cost": entry.result.solution.cost,
                    "vertices": entry.result.construction.graph.num_vertices,
                    "seconds": entry.seconds,
                }
                for entry in self.items
            ],
            "aggregate": {
                "layouts": len(self.items),
                "conflicts": self.total_conflicts(),
                "stitches": self.total_stitches(),
                "workers": self.workers,
                "total_seconds": self.total_seconds,
            },
        }
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats.to_json_dict()
        return payload


def dedupe_names(names: Iterable[str]) -> List[str]:
    """Disambiguate colliding names with ``#1``, ``#2``, ... suffixes.

    Non-colliding names pass through untouched.  The single owner of the
    batch naming rule — used here and by the service's batch endpoint, so
    CLI batches and served batches can never drift apart.
    """
    seen: Dict[str, int] = {}
    unique: List[str] = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        unique.append(f"{name}#{count}" if count else name)
    return unique


def _named_layouts(layouts: LayoutsInput) -> List[Tuple[str, Layout]]:
    """Normalise the accepted input shapes to unique (name, layout) pairs."""
    if isinstance(layouts, Mapping):
        pairs = list(layouts.items())
    else:
        pairs = []
        for position, entry in enumerate(layouts):
            if isinstance(entry, Layout):
                pairs.append((entry.name or f"layout{position}", entry))
            else:
                name, layout = entry
                pairs.append((name, layout))
    names = dedupe_names(name for name, _ in pairs)
    return list(zip(names, (layout for _, layout in pairs)))


def decompose_many(
    layouts: LayoutsInput,
    options: Optional[DecomposerOptions] = None,
    layer: Optional[str] = None,
    workers: Optional[int] = None,
    cache: Union[ComponentCache, bool, None] = True,
) -> BatchResult:
    """Decompose every layout in ``layouts`` with shared workers and cache.

    Parameters
    ----------
    layouts:
        Layouts, (name, layout) pairs, or a name->layout mapping.  Duplicate
        names are disambiguated with ``#1``, ``#2``, ... suffixes.
    options:
        One :class:`DecomposerOptions` applied to every layout (defaults to
        quadruple patterning with the paper's parameters).
    layer:
        The layer decomposed on every layout; ``None`` (default) resolves per
        layout to its first layer (falling back to ``"metal1"``), matching the
        single-layout CLI behavior.
    workers:
        ``None``/``1`` serial, ``N >= 2`` a pool of N processes shared by all
        layouts, ``0`` one worker per CPU.
    cache:
        ``True`` (default) creates a fresh shared :class:`ComponentCache`,
        ``False``/``None`` disables memoisation, or pass your own cache to
        persist it across batches.

    Results are bit-identical to serial per-layout decomposition regardless
    of ``workers`` and ``cache``.
    """
    named = _named_layouts(layouts)
    options = options or DecomposerOptions.for_quadruple_patterning()
    if cache is True:
        component_cache: Optional[ComponentCache] = ComponentCache()
    elif cache is False or cache is None:
        component_cache = None
    else:
        component_cache = cache

    worker_count = resolve_workers(workers)
    decomposer = Decomposer(options)

    executor: Optional[ProcessPoolExecutor] = None
    start_batch = time.perf_counter()
    stats_before = (
        component_cache.snapshot_stats() if component_cache is not None else None
    )
    try:
        if worker_count >= 2:
            try:
                executor = ProcessPoolExecutor(max_workers=worker_count)
            except Exception:
                # The shared pool could not start (sandboxed environment):
                # degrade the whole batch to serial rather than letting every
                # layout's scheduler attempt (and tear down) its own pool.
                worker_count = 1
        batch = BatchResult(workers=worker_count)
        for name, layout in named:
            if layer is None:
                layers = layout.layers()
                layout_layer = layers[0] if layers else "metal1"
            else:
                layout_layer = layer
            start = time.perf_counter()
            result = decomposer.decompose(
                layout,
                layer=layout_layer,
                workers=worker_count,
                cache=component_cache,
                executor=executor,
            )
            batch.items.append(
                BatchItem(name=name, result=result, seconds=time.perf_counter() - start)
            )
    finally:
        if executor is not None:
            executor.shutdown()
    batch.total_seconds = time.perf_counter() - start_batch
    if component_cache is not None:
        # Report this batch's activity only: a user-supplied cache may carry
        # hits/misses from earlier batches.
        after = component_cache.snapshot_stats()
        batch.cache_stats = CacheStats(
            hits=after.hits - stats_before.hits,
            misses=after.misses - stats_before.misses,
            evictions=after.evictions - stats_before.evictions,
            entries_hint=after.entries_hint,
        )
    return batch
