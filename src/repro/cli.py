"""Command line interface.

Five subcommands::

    repro-decompose decompose INPUT [--algorithm linear --colors 4 --output masks.gds]
    repro-decompose batch INPUT [INPUT ...] [--workers 4 --cache-db cells.db --json report.json]
    repro-decompose serve [--port 8000 --workers 0 --cache-db cells.db]
    repro-decompose stats INPUT
    repro-decompose generate CIRCUIT [--scale 0.35 --output circuit.json]

``INPUT`` may be a GDSII file (``.gds``/``.gdsii``) or a JSON layout produced
by this library.  The decompose command writes the masks as a GDSII or JSON
file whose layers are named ``mask0`` .. ``mask(K-1)``.

``batch`` decomposes many layouts in one invocation: the divided components
of every layout are scheduled across ``--workers`` processes and memoised in
a shared component cache (repeated cells are solved once), then per-layout
and aggregate summaries are printed.  ``--cache-db`` backs that cache with a
SQLite file shared across invocations; ``--cache-max-entries`` bounds it.
Results are bit-identical to running ``decompose`` on each input serially.

``serve`` runs the long-lived decomposition server of
:mod:`repro.service` (also reachable as ``python -m repro.service``): a
persistent worker pool behind ``POST /decompose`` / ``POST /batch`` /
``GET /healthz`` / ``GET /stats``, with the same SQLite cache flags so
solved components persist across requests and restarts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.bench.circuits import load_circuit
from repro.core.decomposer import Decomposer
from repro.core.options import DecomposerOptions
from repro.errors import ReproError
from repro.geometry.layout import Layout
from repro.io.gds import read_gds, write_gds
from repro.io.jsonio import read_json, write_json


def _load_layout(path: str) -> Layout:
    from repro.errors import LayoutIOError

    suffix = Path(path).suffix.lower()
    try:
        if suffix in (".gds", ".gdsii", ".gds2"):
            return read_gds(path)
        return read_json(path)
    except OSError as exc:
        raise LayoutIOError(f"cannot read layout {path!r}: {exc}") from exc


def _save_layout(layout: Layout, path: str) -> None:
    suffix = Path(path).suffix.lower()
    if suffix in (".gds", ".gdsii", ".gds2"):
        write_gds(layout, path)
    else:
        write_json(layout, path)


def _options_for(colors: int, algorithm: str) -> DecomposerOptions:
    if colors == 4:
        return DecomposerOptions.for_quadruple_patterning(algorithm)
    if colors == 5:
        return DecomposerOptions.for_pentuple_patterning(algorithm)
    return DecomposerOptions.for_k_patterning(colors, algorithm)


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.analysis import decomposition_to_svg, summary_text

    layout = _load_layout(args.input)
    layer = args.layer or (layout.layers()[0] if layout.layers() else "metal1")
    options = _options_for(args.colors, args.algorithm)
    if args.min_spacing is not None:
        options.construction.min_coloring_distance = args.min_spacing
    result = Decomposer(options).decompose(layout, layer=layer)
    print(summary_text(result))
    if args.output:
        _save_layout(result.to_mask_layout(), args.output)
        print(f"masks written to {args.output}")
    if args.svg:
        decomposition_to_svg(result, args.svg)
        print(f"SVG rendering written to {args.svg}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.runtime import decompose_many, open_cache

    named = []
    for path in args.inputs:
        layout = _load_layout(path)
        named.append((Path(path).stem, layout))
    options = _options_for(args.colors, args.algorithm)
    if args.min_spacing is not None:
        options.construction.min_coloring_distance = args.min_spacing

    if args.no_cache:
        if args.cache_db or args.cache_max_entries is not None:
            raise ConfigurationError(
                "--no-cache cannot be combined with --cache-db/--cache-max-entries"
            )
        cache = False
    else:
        import sqlite3

        try:
            cache = open_cache(
                db_path=args.cache_db, max_entries=args.cache_max_entries
            )
        except (OSError, sqlite3.Error, ValueError) as exc:
            # Keep the CLI's "error: ..." contract for bad --cache-db paths
            # instead of a raw traceback.
            raise ConfigurationError(
                f"cannot open component cache "
                f"({args.cache_db or 'in-memory'}): {exc}"
            ) from exc

    from repro.errors import LayoutIOError

    try:
        # layer=None resolves per layout (each input may name its layers
        # differently); an explicit --layer applies to every input.
        batch = decompose_many(
            named,
            options=options,
            layer=args.layer,
            workers=args.workers,
            cache=cache,
        )
        for item in batch.items:
            print(item.summary())
        print(batch.aggregate_summary())

        try:
            if args.output_dir:
                out_dir = Path(args.output_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                for item in batch.items:
                    target = out_dir / f"{item.name}-masks.json"
                    _save_layout(item.result.to_mask_layout(), str(target))
                print(f"masks written to {out_dir}")
            if args.json:
                with open(args.json, "w", encoding="utf-8") as handle:
                    json.dump(batch.to_json_dict(), handle, indent=2)
                print(f"batch report written to {args.json}")
        except OSError as exc:
            raise LayoutIOError(f"cannot write batch outputs: {exc}") from exc
    finally:
        if cache is not False:
            cache.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServerConfig, run_server

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        cache_db=args.cache_db,
        cache_max_entries=args.cache_max_entries,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        force_inline_pool=args.inline_pool,
    )
    return run_server(config)


def _cmd_stats(args: argparse.Namespace) -> int:
    layout = _load_layout(args.input)
    print(f"layout {layout.name!r}: {len(layout)} shapes on layers {layout.layers()}")
    for layer in layout.layers():
        stats = layout.statistics(layer)
        print(
            f"  {layer}: {stats['shapes']} shapes, density {stats['density']:.3f}, "
            f"bbox {stats['bbox_width']}x{stats['bbox_height']} nm"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    layout = load_circuit(args.circuit, scale=args.scale)
    output = args.output or f"{args.circuit.lower()}.json"
    _save_layout(layout, output)
    print(f"generated {len(layout)} shapes for {args.circuit} -> {output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Quadruple (and general K) patterning layout decomposition.  "
            "Use 'batch' to decompose many layouts at once with a process "
            "pool (--workers) and a shared component cache; both knobs keep "
            "results bit-identical to the serial flow."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decompose = subparsers.add_parser("decompose", help="decompose a layout into masks")
    decompose.add_argument("input", help="input layout (.gds or .json)")
    decompose.add_argument("--layer", default=None, help="layer to decompose")
    decompose.add_argument("--colors", type=int, default=4, help="number of masks K")
    decompose.add_argument(
        "--algorithm",
        default="sdp-backtrack",
        choices=list(DecomposerOptions.KNOWN_ALGORITHMS),
        help="color assignment algorithm",
    )
    decompose.add_argument(
        "--min-spacing", type=int, default=None, help="override min coloring distance (nm)"
    )
    decompose.add_argument("--output", default=None, help="write masks to this file")
    decompose.add_argument(
        "--svg", default=None, help="write an SVG rendering of the masks to this file"
    )
    decompose.set_defaults(func=_cmd_decompose)

    batch = subparsers.add_parser(
        "batch",
        help="decompose many layouts with shared workers and component cache",
        description=(
            "Decompose several layouts in one run.  Divided components are "
            "scheduled across a process pool (--workers) and memoised in a "
            "shared component cache keyed by canonical component structure, "
            "so cells repeated within or across layouts are solved once.  "
            "Masks, conflict and stitch counts are bit-identical to serial "
            "per-layout decomposition."
        ),
    )
    batch.add_argument("inputs", nargs="+", help="input layouts (.gds or .json)")
    batch.add_argument("--layer", default=None, help="layer to decompose (default: first)")
    batch.add_argument("--colors", type=int, default=4, help="number of masks K")
    batch.add_argument(
        "--algorithm",
        default="sdp-backtrack",
        choices=list(DecomposerOptions.KNOWN_ALGORITHMS),
        help="color assignment algorithm",
    )
    batch.add_argument(
        "--min-spacing", type=int, default=None, help="override min coloring distance (nm)"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for component coloring (1 = serial, 0 = one per CPU)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared component cache (every component re-solved)",
    )
    batch.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help=(
            "back the component cache with a SQLite file at PATH, shared "
            "across processes and invocations (default: in-memory LRU)"
        ),
    )
    batch.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the component cache to N entries (LRU eviction)",
    )
    batch.add_argument(
        "--output-dir", default=None, help="write per-layout mask files to this directory"
    )
    batch.add_argument(
        "--json", default=None, help="write the per-layout + aggregate report as JSON"
    )
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the decomposition server (persistent worker pool + HTTP API)",
        description=(
            "Start the long-running decomposition service: an asyncio HTTP "
            "front end (POST /decompose, POST /batch, GET /healthz, "
            "GET /stats) over a pool of worker processes created once at "
            "startup.  With --cache-db, solved components persist in a "
            "SQLite store shared by every worker and surviving restarts.  "
            "Served masks are bit-identical to the serial decompose flow.  "
            "Also invocable as 'python -m repro.service'."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8000, help="TCP port (0 = ephemeral, printed on start)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = one per CPU)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="max queued+in-flight jobs before requests get 503 + Retry-After",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request solve budget in seconds (504 beyond it)",
    )
    serve.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help="SQLite component cache shared by workers and across restarts",
    )
    serve.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the component cache to N entries (LRU eviction)",
    )
    serve.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="largest accepted request body in MiB",
    )
    serve.add_argument(
        "--inline-pool",
        action="store_true",
        help="run jobs on threads in-process instead of worker processes",
    )
    serve.set_defaults(func=_cmd_serve)

    stats = subparsers.add_parser("stats", help="print layout statistics")
    stats.add_argument("input", help="input layout (.gds or .json)")
    stats.set_defaults(func=_cmd_stats)

    generate = subparsers.add_parser("generate", help="generate a synthetic benchmark circuit")
    generate.add_argument("circuit", help="circuit name, e.g. C432 or S38417")
    generate.add_argument("--scale", type=float, default=0.35, help="size scale factor")
    generate.add_argument("--output", default=None, help="output file (.gds or .json)")
    generate.set_defaults(func=_cmd_generate)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
