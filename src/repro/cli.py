"""Command line interface.

Eleven subcommands::

    repro-decompose decompose INPUT [--algorithm linear --colors 4 --output masks.gds]
    repro-decompose batch INPUT [INPUT ...] [--workers 4 --cache-db cells.db --json report.json]
    repro-decompose serve [--port 8000 --workers 0 --cache-db cells.db]
    repro-decompose cluster node|coordinator [...]
    repro-decompose prefill --cache-db cells.db INPUT [INPUT ...]
    repro-decompose stats INPUT
    repro-decompose generate CIRCUIT [--scale 0.35 --output circuit.json]
    repro-decompose trace --journal DIR [TRACE_ID] [--since SEQ|ISO --limit N] [--json]
    repro-decompose usage --journal DIR [--checkpoint FILE] [--json]
    repro-decompose status --coordinator HOST:PORT [--watch --interval 2]
    repro-decompose lint [PATHS ...] [--json --no-baseline --update-baseline --update-manifest]

``INPUT`` may be a GDSII file (``.gds``/``.gdsii``) or a JSON layout produced
by this library.  The decompose command writes the masks as a GDSII or JSON
file whose layers are named ``mask0`` .. ``mask(K-1)``.

``batch`` decomposes many layouts in one invocation: the divided components
of every layout are scheduled across ``--workers`` processes and memoised in
a shared component cache (repeated cells are solved once), then per-layout
and aggregate summaries are printed.  ``--cache-db`` backs that cache with a
SQLite file shared across invocations; ``--cache-max-entries`` bounds it.
Results are bit-identical to running ``decompose`` on each input serially.

``serve`` runs the long-lived decomposition server of
:mod:`repro.service` (also reachable as ``python -m repro.service``): a
persistent worker pool behind ``POST /decompose`` / ``POST /batch`` /
``POST /component`` / ``GET /healthz`` / ``GET /stats`` / ``GET /metrics``,
with the same SQLite cache flags so solved components persist across
requests and restarts.

``cluster`` runs the multi-node roles of :mod:`repro.cluster`: ``cluster
node`` is a decomposition server acting as a shard (identical flags to
``serve``), ``cluster coordinator`` (also ``python -m repro.cluster``) is
the front end that routes each divided component to its cache-owning node
via a consistent-hash ring and merges results byte-identically.

``prefill`` warms a ``--cache-db`` offline: it decomposes a cell library
once and stores every solved component, so nodes mounting that database
start with a hot cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.bench.circuits import load_circuit
from repro.core.decomposer import Decomposer
from repro.core.options import DecomposerOptions
from repro.errors import ReproError
from repro.geometry.layout import Layout
from repro.io.gds import read_gds, write_gds
from repro.io.jsonio import read_json, write_json


def _load_layout(path: str) -> Layout:
    from repro.errors import LayoutIOError

    suffix = Path(path).suffix.lower()
    try:
        if suffix in (".gds", ".gdsii", ".gds2"):
            return read_gds(path)
        return read_json(path)
    except OSError as exc:
        raise LayoutIOError(f"cannot read layout {path!r}: {exc}") from exc


def _save_layout(layout: Layout, path: str) -> None:
    suffix = Path(path).suffix.lower()
    if suffix in (".gds", ".gdsii", ".gds2"):
        write_gds(layout, path)
    else:
        write_json(layout, path)


def _options_for(colors: int, algorithm: str) -> DecomposerOptions:
    if colors == 4:
        return DecomposerOptions.for_quadruple_patterning(algorithm)
    if colors == 5:
        return DecomposerOptions.for_pentuple_patterning(algorithm)
    return DecomposerOptions.for_k_patterning(colors, algorithm)


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.analysis import decomposition_to_svg, summary_text

    layout = _load_layout(args.input)
    layer = args.layer or (layout.layers()[0] if layout.layers() else "metal1")
    options = _options_for(args.colors, args.algorithm)
    if args.min_spacing is not None:
        options.construction.min_coloring_distance = args.min_spacing
    result = Decomposer(options).decompose(layout, layer=layer)
    print(summary_text(result))
    if args.output:
        _save_layout(result.to_mask_layout(), args.output)
        print(f"masks written to {args.output}")
    if args.svg:
        decomposition_to_svg(result, args.svg)
        print(f"SVG rendering written to {args.svg}")
    return 0


def _load_named_layouts(paths) -> list:
    """Load CLI input paths into the (name, layout) pairs the batch API takes."""
    return [(Path(path).stem, _load_layout(path)) for path in paths]


def _solve_options_from(args: argparse.Namespace) -> DecomposerOptions:
    """Build DecomposerOptions from the shared --colors/--algorithm/--min-spacing."""
    options = _options_for(args.colors, args.algorithm)
    if args.min_spacing is not None:
        options.construction.min_coloring_distance = args.min_spacing
    return options


def _open_cli_cache(db_path, max_entries):
    """Open a component cache, keeping the CLI's "error: ..." contract for
    bad --cache-db paths instead of a raw traceback."""
    import sqlite3

    from repro.errors import ConfigurationError
    from repro.runtime import open_cache

    try:
        return open_cache(db_path=db_path, max_entries=max_entries)
    except (OSError, sqlite3.Error, ValueError) as exc:
        raise ConfigurationError(
            f"cannot open component cache ({db_path or 'in-memory'}): {exc}"
        ) from exc


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.runtime import decompose_many

    named = _load_named_layouts(args.inputs)
    options = _solve_options_from(args)

    if args.no_cache:
        if args.cache_db or args.cache_max_entries is not None:
            raise ConfigurationError(
                "--no-cache cannot be combined with --cache-db/--cache-max-entries"
            )
        cache = False
    else:
        cache = _open_cli_cache(args.cache_db, args.cache_max_entries)

    from repro.errors import LayoutIOError

    try:
        # layer=None resolves per layout (each input may name its layers
        # differently); an explicit --layer applies to every input.
        batch = decompose_many(
            named,
            options=options,
            layer=args.layer,
            workers=args.workers,
            cache=cache,
        )
        for item in batch.items:
            print(item.summary())
        print(batch.aggregate_summary())

        try:
            if args.output_dir:
                out_dir = Path(args.output_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                for item in batch.items:
                    target = out_dir / f"{item.name}-masks.json"
                    _save_layout(item.result.to_mask_layout(), str(target))
                print(f"masks written to {out_dir}")
            if args.json:
                with open(args.json, "w", encoding="utf-8") as handle:
                    json.dump(batch.to_json_dict(), handle, indent=2)
                print(f"batch report written to {args.json}")
        except OSError as exc:
            raise LayoutIOError(f"cannot write batch outputs: {exc}") from exc
    finally:
        if cache is not False:
            cache.close()
    return 0


def _setup_cli_logging(args: argparse.Namespace, component: str) -> None:
    from repro.errors import ConfigurationError
    from repro.obs.logsetup import setup_logging

    try:
        setup_logging(args.log_level, component)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from exc


def _server_config_from(args: argparse.Namespace):
    from repro.service import ServerConfig

    return ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        cache_db=args.cache_db,
        cache_max_entries=args.cache_max_entries,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        force_inline_pool=args.inline_pool,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
        journal_segment_bytes=args.journal_segment_mb * 1024 * 1024,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import run_server

    _setup_cli_logging(args, "server")
    return run_server(_server_config_from(args))


def _cmd_cluster_node(args: argparse.Namespace) -> int:
    from repro.service import run_server

    # A node *is* a decomposition server — the shard role only adds traffic
    # on POST /component, routed here by the coordinators' hash ring.
    _setup_cli_logging(args, "node")
    return run_server(_server_config_from(args))


def _cmd_cluster_coordinator(args: argparse.Namespace) -> int:
    from repro.cluster import CoordinatorConfig, run_coordinator
    from repro.errors import ConfigurationError
    from repro.obs.slo import parse_slo_spec

    _setup_cli_logging(args, "coordinator")
    peers = [
        peer.strip()
        for chunk in args.peers
        for peer in chunk.split(",")
        if peer.strip()
    ]
    try:
        parse_slo_spec(args.slo)  # fail a typo at startup, not at /slo time
    except ValueError as exc:
        raise ConfigurationError(f"invalid --slo spec: {exc}") from exc
    config = CoordinatorConfig(
        host=args.host,
        port=args.port,
        peers=peers,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        probe_interval=args.probe_interval,
        failure_threshold=args.failure_threshold,
        virtual_nodes=args.virtual_nodes,
        component_timeout=args.component_timeout,
        fanout_threads=args.fanout_threads,
        batch_max_components=args.batch_max_components,
        batch_max_bytes=args.batch_max_bytes,
        max_body_bytes=args.max_body_mb * 1024 * 1024,
        journal_dir=args.journal,
        journal_fsync=args.journal_fsync,
        journal_segment_bytes=args.journal_segment_mb * 1024 * 1024,
        scrape_interval=args.scrape_interval,
        scrape_timeout=args.scrape_timeout,
        metrics_staleness_seconds=args.metrics_staleness,
        slo=args.slo,
        slo_window_seconds=args.slo_window,
    )
    return run_coordinator(config)


def _parse_since(text: Optional[str]):
    """``--since`` accepts a journal sequence number or an ISO timestamp.

    Returns ``(since_seq, since_ts)`` — exactly one is set.  An all-digit
    value is a seq (matches what ``trace`` listings and journal lines
    print); anything else must parse as ``datetime.fromisoformat``.
    """
    from datetime import datetime

    from repro.errors import ConfigurationError

    if text is None:
        return None, None
    text = text.strip()
    if text.isdigit():
        return int(text), None
    try:
        return None, datetime.fromisoformat(text).timestamp()
    except ValueError as exc:
        raise ConfigurationError(
            f"--since {text!r} is neither a sequence number nor an ISO "
            f"timestamp (try 12345 or 2026-01-31T12:00:00)"
        ) from exc


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.obs.journal import read_journal
    from repro.obs.trace import assemble_trace, format_trace_tree

    since_seq, since_ts = _parse_since(args.since)
    try:
        events = read_journal(
            args.journal,
            since_seq=since_seq,
            since_ts=since_ts,
            limit=args.limit,
        )
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read journal {args.journal!r}: {exc}"
        ) from exc
    if not args.trace_id:
        # No id: list the journaled traces, most recent last.
        seen: dict = {}
        for event in events:
            trace_id = event.get("trace_id")
            if trace_id:
                seen.setdefault(trace_id, []).append(event)
        for trace_id, trace_events in seen.items():
            trace = assemble_trace(trace_events)
            print(
                f"{trace_id}  {trace['status']:<10} "
                f"{len(trace_events)} events"
            )
        print(f"{len(seen)} traces in {args.journal}")
        return 0
    matching = [e for e in events if e.get("trace_id") == args.trace_id]
    if not matching:
        print(f"error: no journaled events for trace {args.trace_id}", file=sys.stderr)
        return 1
    trace = assemble_trace(matching)
    if args.json:
        print(json.dumps(trace, indent=2, sort_keys=True))
    else:
        print(format_trace_tree(trace))
    return 0


def _cmd_usage(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError
    from repro.obs.journal import read_journal
    from repro.obs.usage import fold_usage, format_usage_table, render_checkpoint

    try:
        events = read_journal(args.journal)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read journal {args.journal!r}: {exc}"
        ) from exc
    rollup = fold_usage(events)
    if args.checkpoint:
        text = render_checkpoint(rollup)
        Path(args.checkpoint).write_text(text, encoding="utf-8")
        print(
            f"usage checkpoint: {rollup['meta']['clients']} client(s) over "
            f"{rollup['meta']['events']} events -> {args.checkpoint}"
        )
        return 0
    if args.json:
        sys.stdout.write(render_checkpoint(rollup))
    else:
        print(format_usage_table(rollup))
    return 0


def _format_slo_status(payload: dict) -> str:
    """Render one ``GET /slo`` payload as a compact status block.

    Pure function of the payload — ``status --watch`` re-renders it every
    poll and tests assert on it without a cluster.
    """
    target = payload["target"]
    latency = payload["latency"]
    errors = payload["errors"]
    nodes = payload.get("nodes") or {}

    def seconds(value) -> str:
        return "n/a" if value is None else f"{value * 1000:.1f}ms"

    quantile_pct = target["quantile"] * 100
    quantile_pct_text = f"{quantile_pct:g}"
    estimate = latency["estimate_seconds"]
    within = latency["within_target"]
    verdict = "n/a" if within is None else ("OK" if within else "MISS")
    lines = [
        f"slo: p{quantile_pct_text} < {target['latency_seconds']:g}s, "
        f"err < {target['error_ratio'] * 100:g}%",
    ]
    if nodes:
        lines.append(f"nodes: {nodes.get('alive', '?')}/{nodes.get('total', '?')} alive")
    lines.append(
        f"latency: p{quantile_pct_text}={seconds(estimate)} [{verdict}] "
        f"over {latency['observations']} observations"
    )
    percentiles = ", ".join(
        f"{name}={seconds(value)}"
        for name, value in sorted(latency["percentiles"].items())
    )
    lines.append(f"percentiles: {percentiles}")
    lines.append(
        f"errors: {errors['window_errors']}/{errors['window_requests']} "
        f"in {errors['window_span_seconds']:g}s window "
        f"(ratio {errors['ratio'] * 100:.3f}%)"
    )
    lines.append(
        f"burn rate: {errors['burn_rate']:.2f}x budget "
        f"(remaining {errors['budget_remaining'] * 100:.1f}%)"
    )
    return "\n".join(lines)


def _cmd_status(args: argparse.Namespace) -> int:
    import time as _time

    from repro.cluster.membership import parse_peer
    from repro.service.client import ServiceClient, ServiceError

    host, port = parse_peer(args.coordinator)
    client = ServiceClient(host, port, timeout=args.timeout)
    try:
        while True:
            try:
                payload = client.slo()
            except ServiceError as exc:
                print(f"error: coordinator unreachable: {exc}", file=sys.stderr)
                if not args.watch:
                    return 1
            else:
                if args.json:
                    print(json.dumps(payload, indent=2, sort_keys=True))
                else:
                    print(_format_slo_status(payload))
                if not args.watch:
                    return 0
                print()
            try:
                _time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
    finally:
        client.close()


def _cmd_prefill(args: argparse.Namespace) -> int:
    from repro.runtime import decompose_many

    named = _load_named_layouts(args.inputs)
    options = _solve_options_from(args)
    cache = _open_cli_cache(args.cache_db, args.cache_max_entries)
    try:
        before = cache.snapshot_stats()
        batch = decompose_many(
            named,
            options=options,
            layer=args.layer,
            workers=args.workers,
            cache=cache,
        )
        for item in batch.items:
            print(item.summary())
        after = cache.snapshot_stats()
        print(
            f"prefilled {args.cache_db}: {after.entries_hint} components stored "
            f"({after.misses - before.misses} solved this run, "
            f"{after.hits - before.hits} replayed) in {batch.total_seconds:.3f}s; "
            f"point 'repro-decompose cluster node --cache-db {args.cache_db}' or "
            f"'serve --cache-db {args.cache_db}' at it to start warm"
        )
    finally:
        cache.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    layout = _load_layout(args.input)
    print(f"layout {layout.name!r}: {len(layout)} shapes on layers {layout.layers()}")
    for layer in layout.layers():
        stats = layout.statistics(layer)
        print(
            f"  {layer}: {stats['shapes']} shapes, density {stats['density']:.3f}, "
            f"bbox {stats['bbox_width']}x{stats['bbox_height']} nm"
        )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    layout = load_circuit(args.circuit, scale=args.scale)
    output = args.output or f"{args.circuit.lower()}.json"
    _save_layout(layout, output)
    print(f"generated {len(layout)} shapes for {args.circuit} -> {output}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Reached only via build_parser() round-trips in tests; the normal
    # entry point short-circuits in main() with the raw argument tail.
    from repro.analysis.linter import main as lint_main

    return lint_main([])


def _add_server_flags(parser: argparse.ArgumentParser, default_port: int) -> None:
    """Flags shared by ``serve`` and ``cluster node`` (one server, two roles)."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=default_port,
        help="TCP port (0 = ephemeral, printed on start)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes (0 = one per CPU)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="max queued+in-flight jobs before requests get 503 + Retry-After",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request solve budget in seconds (504 beyond it)",
    )
    parser.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help="SQLite component cache shared by workers and across restarts",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the component cache to N entries (LRU eviction)",
    )
    parser.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="largest accepted request body in MiB",
    )
    parser.add_argument(
        "--inline-pool",
        action="store_true",
        help="run jobs on threads in-process instead of worker processes",
    )
    _add_observability_flags(parser)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """Tracing/journal/logging flags shared by every long-running role."""
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "append lifecycle events to a JSONL journal in DIR and enable "
            "request tracing plus GET /trace and GET /watch (default: off)"
        ),
    )
    parser.add_argument(
        "--journal-fsync",
        action="store_true",
        help="fsync every journal append (durability over throughput)",
    )
    parser.add_argument(
        "--journal-segment-mb",
        type=int,
        default=4,
        metavar="MB",
        help="rotate journal segments beyond this many MiB",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        metavar="LEVEL",
        help="structured key=value log level: debug, info, warning, error",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-decompose",
        description=(
            "Quadruple (and general K) patterning layout decomposition.  "
            "Use 'batch' to decompose many layouts at once with a process "
            "pool (--workers) and a shared component cache; both knobs keep "
            "results bit-identical to the serial flow."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decompose = subparsers.add_parser("decompose", help="decompose a layout into masks")
    decompose.add_argument("input", help="input layout (.gds or .json)")
    decompose.add_argument("--layer", default=None, help="layer to decompose")
    decompose.add_argument("--colors", type=int, default=4, help="number of masks K")
    decompose.add_argument(
        "--algorithm",
        default="sdp-backtrack",
        choices=list(DecomposerOptions.KNOWN_ALGORITHMS),
        help="color assignment algorithm",
    )
    decompose.add_argument(
        "--min-spacing", type=int, default=None, help="override min coloring distance (nm)"
    )
    decompose.add_argument("--output", default=None, help="write masks to this file")
    decompose.add_argument(
        "--svg", default=None, help="write an SVG rendering of the masks to this file"
    )
    decompose.set_defaults(func=_cmd_decompose)

    batch = subparsers.add_parser(
        "batch",
        help="decompose many layouts with shared workers and component cache",
        description=(
            "Decompose several layouts in one run.  Divided components are "
            "scheduled across a process pool (--workers) and memoised in a "
            "shared component cache keyed by canonical component structure, "
            "so cells repeated within or across layouts are solved once.  "
            "Masks, conflict and stitch counts are bit-identical to serial "
            "per-layout decomposition."
        ),
    )
    batch.add_argument("inputs", nargs="+", help="input layouts (.gds or .json)")
    batch.add_argument("--layer", default=None, help="layer to decompose (default: first)")
    batch.add_argument("--colors", type=int, default=4, help="number of masks K")
    batch.add_argument(
        "--algorithm",
        default="sdp-backtrack",
        choices=list(DecomposerOptions.KNOWN_ALGORITHMS),
        help="color assignment algorithm",
    )
    batch.add_argument(
        "--min-spacing", type=int, default=None, help="override min coloring distance (nm)"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for component coloring (1 = serial, 0 = one per CPU)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared component cache (every component re-solved)",
    )
    batch.add_argument(
        "--cache-db",
        default=None,
        metavar="PATH",
        help=(
            "back the component cache with a SQLite file at PATH, shared "
            "across processes and invocations (default: in-memory LRU)"
        ),
    )
    batch.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the component cache to N entries (LRU eviction)",
    )
    batch.add_argument(
        "--output-dir", default=None, help="write per-layout mask files to this directory"
    )
    batch.add_argument(
        "--json", default=None, help="write the per-layout + aggregate report as JSON"
    )
    batch.set_defaults(func=_cmd_batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the decomposition server (persistent worker pool + HTTP API)",
        description=(
            "Start the long-running decomposition service: an asyncio HTTP "
            "front end (POST /decompose, POST /batch, POST /component, "
            "GET /healthz, GET /stats, GET /metrics) over a pool of worker "
            "processes created once at startup.  With --cache-db, solved "
            "components persist in a SQLite store shared by every worker "
            "and surviving restarts.  Served masks are bit-identical to the "
            "serial decompose flow.  Also invocable as "
            "'python -m repro.service'."
        ),
    )
    _add_server_flags(serve, default_port=8000)
    serve.set_defaults(func=_cmd_serve)

    cluster = subparsers.add_parser(
        "cluster",
        help="run a multi-node decomposition cluster role (node / coordinator)",
        description=(
            "Multi-node sharded decomposition.  'node' runs one shard (a "
            "decomposition server whose component cache owns a hash range); "
            "'coordinator' runs the front end that splits layouts into "
            "canonical components, routes each to its cache-owning node via "
            "a consistent-hash ring, and merges results byte-identically to "
            "a single-process run.  Kill a node and the coordinator "
            "rebalances the ring and re-routes in-flight components."
        ),
    )
    roles = cluster.add_subparsers(dest="role", required=True)

    node = roles.add_parser(
        "node",
        help="run one cluster shard (decomposition server + component endpoint)",
        description=(
            "One cluster shard.  Identical to 'serve' — the coordinators "
            "add traffic on POST /component.  Give every node of a cluster "
            "its own --cache-db (or its own disk): a node owns the cache "
            "for its hash range, so sharing one database across shards is "
            "unnecessary.  Use 'repro-decompose prefill' to warm the cache "
            "before the node joins."
        ),
    )
    _add_server_flags(node, default_port=8001)
    node.set_defaults(func=_cmd_cluster_node)

    coordinator = roles.add_parser(
        "coordinator",
        help="run the cluster front end (hash-routes components to nodes)",
        description=(
            "The cluster front end: accepts the same POST /decompose and "
            "POST /batch API as 'serve', shards every layout's components "
            "across the --peers nodes by canonical hash, and merges the "
            "results.  Any number of coordinators with the same --peers "
            "list route identically (placement is deterministic), so "
            "coordinators scale out statelessly.  Also invocable as "
            "'python -m repro.cluster'."
        ),
    )
    coordinator.add_argument("--host", default="127.0.0.1", help="bind address")
    coordinator.add_argument(
        "--port", type=int, default=8100, help="TCP port (0 = ephemeral, printed on start)"
    )
    coordinator.add_argument(
        "--peers",
        action="append",
        required=True,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="cluster nodes (repeat the flag or separate with commas)",
    )
    coordinator.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="max queued+in-flight layout jobs before requests get 503 + Retry-After",
    )
    coordinator.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request solve budget in seconds (504 beyond it)",
    )
    coordinator.add_argument(
        "--probe-interval",
        type=float,
        default=2.0,
        help="seconds between node heartbeat probes",
    )
    coordinator.add_argument(
        "--failure-threshold",
        type=int,
        default=2,
        help="consecutive failed heartbeats before a node leaves the ring",
    )
    coordinator.add_argument(
        "--virtual-nodes",
        type=int,
        default=64,
        help="virtual nodes per physical node on the consistent-hash ring",
    )
    coordinator.add_argument(
        "--component-timeout",
        type=float,
        default=120.0,
        help="per-component node request timeout in seconds",
    )
    coordinator.add_argument(
        "--fanout-threads",
        type=int,
        default=8,
        help="threads fanning component requests out to nodes",
    )
    coordinator.add_argument(
        "--batch-max-components",
        type=int,
        default=64,
        metavar="N",
        help="most components micro-batched into one POST /components request",
    )
    coordinator.add_argument(
        "--batch-max-bytes",
        type=int,
        default=4 * 1024 * 1024,
        metavar="BYTES",
        help=(
            "approximate serialized-size bound per micro-batch "
            "(an oversized single component still ships, alone)"
        ),
    )
    coordinator.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        help="largest accepted request body in MiB",
    )
    coordinator.add_argument(
        "--slo",
        default="p99=2s,err=0.1%",
        metavar="SPEC",
        help=(
            "declarative SLO target for GET /slo and the repro_slo_* gauges "
            "on GET /cluster/metrics, e.g. p99=2s,err=0.1%% or p95=500ms"
        ),
    )
    coordinator.add_argument(
        "--slo-window",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="rolling window for error-budget burn-rate accounting",
    )
    coordinator.add_argument(
        "--scrape-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how often the coordinator scrapes each node's /metrics",
    )
    coordinator.add_argument(
        "--scrape-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-node /metrics scrape timeout",
    )
    coordinator.add_argument(
        "--metrics-staleness",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "age out a node's samples from GET /cluster/metrics after this "
            "long without a fresh scrape (default: 3x --scrape-interval)"
        ),
    )
    _add_observability_flags(coordinator)
    coordinator.set_defaults(func=_cmd_cluster_coordinator)

    prefill = subparsers.add_parser(
        "prefill",
        help="warm a --cache-db offline by decomposing a cell library",
        description=(
            "Decompose LAYOUTS once and store every solved component in the "
            "SQLite cache at --cache-db, so a server or cluster node "
            "mounting that file starts with a warm cache (repeated cells "
            "are replayed instead of re-solved from the first request on)."
        ),
    )
    prefill.add_argument("inputs", nargs="+", help="input layouts (.gds or .json)")
    prefill.add_argument(
        "--cache-db",
        required=True,
        metavar="PATH",
        help="SQLite component cache file to create or extend",
    )
    prefill.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the component cache to N entries (LRU eviction)",
    )
    prefill.add_argument("--layer", default=None, help="layer to decompose (default: first)")
    prefill.add_argument("--colors", type=int, default=4, help="number of masks K")
    prefill.add_argument(
        "--algorithm",
        default="sdp-backtrack",
        choices=list(DecomposerOptions.KNOWN_ALGORITHMS),
        help="color assignment algorithm",
    )
    prefill.add_argument(
        "--min-spacing", type=int, default=None, help="override min coloring distance (nm)"
    )
    prefill.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for component coloring (1 = serial, 0 = one per CPU)",
    )
    prefill.set_defaults(func=_cmd_prefill)

    trace = subparsers.add_parser(
        "trace",
        help="inspect a server/coordinator event journal (list or show traces)",
        description=(
            "Read the append-only event journal a '--journal DIR' server or "
            "coordinator wrote.  Without TRACE_ID, lists every journaled "
            "trace; with one, prints the assembled span tree (per-stage "
            "offsets and durations) and lifecycle events."
        ),
    )
    trace.add_argument(
        "--journal", required=True, metavar="DIR", help="journal directory to read"
    )
    trace.add_argument(
        "trace_id", nargs="?", default=None, help="trace id to assemble and print"
    )
    trace.add_argument(
        "--since",
        default=None,
        metavar="SEQ|ISO",
        help=(
            "only events after journal sequence SEQ, or at/after an ISO "
            "timestamp (skips whole segments via their first-event index)"
        ),
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="keep only the last N matching events",
    )
    trace.add_argument(
        "--json", action="store_true", help="print the assembled trace as JSON"
    )
    trace.set_defaults(func=_cmd_trace)

    usage = subparsers.add_parser(
        "usage",
        help="fold a journal into deterministic per-client usage rollups",
        description=(
            "Meter a '--journal DIR' server or coordinator: fold its "
            "lifecycle events into per-client rollups (requests by kind, "
            "layouts by name, components solved, cache hits, bytes in/out, "
            "wall time by stage).  Clients self-identify via the "
            "X-Repro-Client request header; requests without one meter "
            "under 'anonymous'.  The fold is deterministic: re-running "
            "over the same journal is byte-identical, so a checkpoint can "
            "be audited by re-folding."
        ),
    )
    usage.add_argument(
        "--journal", required=True, metavar="DIR", help="journal directory to read"
    )
    usage.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="write the versioned JSONL checkpoint to FILE instead of printing",
    )
    usage.add_argument(
        "--json",
        action="store_true",
        help="print the checkpoint JSONL instead of the human table",
    )
    usage.set_defaults(func=_cmd_usage)

    status = subparsers.add_parser(
        "status",
        help="live SLO status of a cluster coordinator (latency + burn rate)",
        description=(
            "Poll a coordinator's GET /slo and print latency quantile "
            "estimates (from the cluster-merged execute-stage histogram), "
            "error-budget burn rate over the rolling window, and node "
            "liveness.  With --watch, re-polls every --interval seconds "
            "until interrupted."
        ),
    )
    status.add_argument(
        "--coordinator",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to poll",
    )
    status.add_argument(
        "--watch", action="store_true", help="keep polling until interrupted"
    )
    status.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll interval with --watch",
    )
    status.add_argument(
        "--timeout", type=float, default=5.0, help="per-poll HTTP timeout"
    )
    status.add_argument(
        "--json", action="store_true", help="print the raw /slo payload as JSON"
    )
    status.set_defaults(func=_cmd_status)

    stats = subparsers.add_parser("stats", help="print layout statistics")
    stats.add_argument("input", help="input layout (.gds or .json)")
    stats.set_defaults(func=_cmd_stats)

    generate = subparsers.add_parser("generate", help="generate a synthetic benchmark circuit")
    generate.add_argument("circuit", help="circuit name, e.g. C432 or S38417")
    generate.add_argument("--scale", type=float, default=0.35, help="size scale factor")
    generate.add_argument("--output", default=None, help="output file (.gds or .json)")
    generate.set_defaults(func=_cmd_generate)

    # ``lint`` is dispatched in main() before this parser runs (its flags,
    # --json/--update-manifest/..., belong to the linter's own parser and
    # argparse.REMAINDER cannot reliably forward leading optionals); the
    # stub exists so ``repro-decompose --help`` lists the subcommand.
    lint = subparsers.add_parser(
        "lint",
        help="run the project static-analysis pass (see python -m repro.analysis)",
        add_help=False,
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[list] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "lint":
        from repro.analysis.linter import main as lint_main

        return lint_main(raw[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
