"""JSON layout exchange format.

A human-readable alternative to GDSII for tests, examples and the synthetic
benchmark generator.  The schema is the dictionary produced by
:meth:`repro.geometry.Layout.to_dict`; a top-level ``"format"`` marker guards
against feeding arbitrary JSON files into the decomposer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import LayoutIOError
from repro.geometry.layout import Layout

FORMAT_MARKER = "repro-layout-v1"


def write_json(layout: Layout, path: Union[str, Path]) -> None:
    """Write ``layout`` to ``path`` as indented JSON."""
    payload = layout.to_dict()
    payload["format"] = FORMAT_MARKER
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def read_json(path: Union[str, Path]) -> Layout:
    """Read a layout previously written by :func:`write_json`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise LayoutIOError(f"{path}: not valid JSON: {exc}") from exc
    if payload.get("format") != FORMAT_MARKER:
        raise LayoutIOError(
            f"{path}: missing '{FORMAT_MARKER}' format marker; "
            "is this a repro layout file?"
        )
    return Layout.from_dict(payload)


def dumps(layout: Layout) -> str:
    """Return the JSON serialisation of ``layout`` as a string."""
    payload = layout.to_dict()
    payload["format"] = FORMAT_MARKER
    return json.dumps(payload, indent=2, sort_keys=True)


def loads(text: str) -> Layout:
    """Parse a layout from a JSON string produced by :func:`dumps`."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_MARKER:
        raise LayoutIOError("missing layout format marker")
    return Layout.from_dict(payload)
