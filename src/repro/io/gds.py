"""Minimal GDSII stream reader and writer.

The DAC'14 benchmarks are distributed as GDSII Metal1 layers.  The full GDSII
specification covers hierarchy (SREF/AREF), paths, text and node records; a
layout decomposer only needs flat polygon data, so this module implements the
subset that matters:

* library / structure framing records (HEADER, BGNLIB, LIBNAME, UNITS,
  BGNSTR, STRNAME, ENDSTR, ENDLIB),
* BOUNDARY elements with LAYER, DATATYPE and XY records,
* PATH elements (converted to their rectangular outline using WIDTH), and
* graceful skipping of any other record type.

The writer emits a single flat structure with one BOUNDARY per shape, which
round-trips through the reader and is accepted by mainstream viewers
(KLayout) — enough to exchange masks produced by the decomposer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import LayoutIOError
from repro.geometry.layout import Layout
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon

# GDSII record types used by this subset (record type byte values).
HEADER = 0x00
BGNLIB = 0x01
LIBNAME = 0x02
UNITS = 0x03
ENDLIB = 0x04
BGNSTR = 0x05
STRNAME = 0x06
ENDSTR = 0x07
BOUNDARY = 0x08
PATH = 0x09
SREF = 0x0A
AREF = 0x0B
TEXT = 0x0C
LAYER = 0x0D
DATATYPE = 0x0E
WIDTH = 0x0F
XY = 0x10
ENDEL = 0x11

# GDSII data type codes.
_NO_DATA = 0x00
_BITARRAY = 0x01
_INT16 = 0x02
_INT32 = 0x03
_REAL8 = 0x05
_ASCII = 0x06


@dataclass
class GdsRecord:
    """A single GDSII record: type byte, data type byte and decoded payload."""

    record_type: int
    data_type: int
    data: Union[bytes, str, List[int], List[float]]


def _decode_real8(raw: bytes) -> float:
    """Decode one GDSII 8-byte excess-64 floating point number."""
    if len(raw) != 8:
        raise LayoutIOError(f"REAL8 record of length {len(raw)}")
    sign = -1.0 if raw[0] & 0x80 else 1.0
    exponent = (raw[0] & 0x7F) - 64
    mantissa = 0
    for byte in raw[1:]:
        mantissa = (mantissa << 8) | byte
    return sign * mantissa * (16.0 ** (exponent - 14))


def _encode_real8(value: float) -> bytes:
    """Encode a float as a GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0x80 if value < 0 else 0x00
    value = abs(value)
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(round(value * (2 ** 56)))
    out = bytearray(8)
    out[0] = sign | (exponent & 0x7F)
    for i in range(7, 0, -1):
        out[i] = mantissa & 0xFF
        mantissa >>= 8
    return bytes(out)


def _iter_records(raw: bytes) -> Iterable[GdsRecord]:
    """Yield decoded records from a GDSII byte stream."""
    offset = 0
    size = len(raw)
    while offset + 4 <= size:
        (length,) = struct.unpack(">H", raw[offset : offset + 2])
        if length == 0:
            break  # optional null padding at end of stream
        record_type = raw[offset + 2]
        data_type = raw[offset + 3]
        payload = raw[offset + 4 : offset + length]
        offset += length
        yield GdsRecord(record_type, data_type, _decode_payload(data_type, payload))
    if offset < size and any(raw[offset:]):
        # Trailing non-zero bytes mean the stream was truncated mid-record.
        raise LayoutIOError("truncated GDSII stream")


def _decode_payload(data_type: int, payload: bytes):
    if data_type == _NO_DATA:
        return b""
    if data_type == _INT16:
        count = len(payload) // 2
        return list(struct.unpack(f">{count}h", payload))
    if data_type == _INT32:
        count = len(payload) // 4
        return list(struct.unpack(f">{count}i", payload))
    if data_type == _REAL8:
        return [
            _decode_real8(payload[i : i + 8]) for i in range(0, len(payload), 8)
        ]
    if data_type == _ASCII:
        return payload.rstrip(b"\x00").decode("ascii", errors="replace")
    return payload


def _encode_record(record_type: int, data_type: int, payload) -> bytes:
    """Encode a record to bytes, padding ASCII payloads to even length."""
    if data_type == _NO_DATA:
        body = b""
    elif data_type == _INT16:
        body = struct.pack(f">{len(payload)}h", *payload)
    elif data_type == _INT32:
        body = struct.pack(f">{len(payload)}i", *payload)
    elif data_type == _REAL8:
        body = b"".join(_encode_real8(v) for v in payload)
    elif data_type == _ASCII:
        raw = payload.encode("ascii")
        if len(raw) % 2:
            raw += b"\x00"
        body = raw
    else:
        raise LayoutIOError(f"unsupported GDSII data type {data_type}")
    length = 4 + len(body)
    return struct.pack(">HBB", length, record_type, data_type) + body


def read_gds(
    path: Union[str, Path],
    layer_map: Optional[Dict[int, str]] = None,
    default_layer: str = "metal1",
) -> Layout:
    """Read a flat GDSII file into a :class:`Layout`.

    Parameters
    ----------
    path:
        File to read.
    layer_map:
        Optional mapping from GDS layer numbers to layer names.  Unmapped
        layers get the name ``"gds<layer>"``.
    default_layer:
        Name used when a BOUNDARY carries no LAYER record (non-conforming but
        seen in the wild).
    """
    raw = Path(path).read_bytes()
    layout: Optional[Layout] = None
    dbu_per_nm = 1.0
    name = Path(path).stem

    current_element: Optional[int] = None
    current_layer: Optional[int] = None
    current_width = 0
    current_xy: List[int] = []

    for record in _iter_records(raw):
        rt = record.record_type
        if rt == LIBNAME:
            name = str(record.data)
        elif rt == UNITS:
            # data = [user units per dbu, meters per dbu]
            if isinstance(record.data, list) and len(record.data) >= 2:
                meters_per_dbu = float(record.data[1])
                dbu_per_nm = 1e-9 / meters_per_dbu if meters_per_dbu else 1.0
        elif rt == BGNSTR:
            if layout is None:
                layout = Layout(name=name, dbu_per_nm=dbu_per_nm)
        elif rt == STRNAME and layout is not None:
            layout.name = str(record.data)
        elif rt in (BOUNDARY, PATH):
            current_element = rt
            current_layer = None
            current_width = 0
            current_xy = []
        elif rt == LAYER and current_element is not None:
            current_layer = int(record.data[0]) if record.data else None
        elif rt == WIDTH and current_element is not None:
            current_width = int(record.data[0]) if record.data else 0
        elif rt == XY and current_element is not None:
            current_xy = list(record.data)
        elif rt == ENDEL and current_element is not None:
            if layout is None:
                layout = Layout(name=name, dbu_per_nm=dbu_per_nm)
            _finish_element(
                layout,
                current_element,
                current_layer,
                current_width,
                current_xy,
                layer_map or {},
                default_layer,
            )
            current_element = None
        elif rt == ENDLIB:
            break

    if layout is None:
        layout = Layout(name=name, dbu_per_nm=dbu_per_nm)
    return layout


def _finish_element(
    layout: Layout,
    element: int,
    layer: Optional[int],
    width: int,
    xy: List[int],
    layer_map: Dict[int, str],
    default_layer: str,
) -> None:
    """Convert a finished BOUNDARY/PATH element into layout shapes."""
    if len(xy) < 4:
        return
    layer_name = default_layer
    if layer is not None:
        layer_name = layer_map.get(layer, f"gds{layer}")
    points = [Point(xy[i], xy[i + 1]) for i in range(0, len(xy) - 1, 2)]
    if element == BOUNDARY:
        try:
            layout.add_polygon(Polygon.from_points(points), layer_name)
        except Exception as exc:  # degenerate boundary: report, do not abort
            raise LayoutIOError(f"bad BOUNDARY outline: {exc}") from exc
    elif element == PATH:
        for polygon in _path_to_polygons(points, width):
            layout.add_polygon(polygon, layer_name)


def _path_to_polygons(points: Sequence[Point], width: int) -> List[Polygon]:
    """Expand a Manhattan PATH centreline into rectangle polygons."""
    if width <= 0:
        return []
    half = width // 2
    polygons: List[Polygon] = []
    for a, b in zip(points[:-1], points[1:]):
        if a.x == b.x:  # vertical segment
            yl, yh = min(a.y, b.y), max(a.y, b.y)
            polygons.append(
                Polygon.from_points(
                    [
                        (a.x - half, yl - half),
                        (a.x + half, yl - half),
                        (a.x + half, yh + half),
                        (a.x - half, yh + half),
                    ]
                )
            )
        elif a.y == b.y:  # horizontal segment
            xl, xh = min(a.x, b.x), max(a.x, b.x)
            polygons.append(
                Polygon.from_points(
                    [
                        (xl - half, a.y - half),
                        (xh + half, a.y - half),
                        (xh + half, a.y + half),
                        (xl - half, a.y + half),
                    ]
                )
            )
        # Non-Manhattan path segments are outside the supported subset.
    return polygons


def write_gds(
    layout: Layout,
    path: Union[str, Path],
    layer_numbers: Optional[Dict[str, int]] = None,
) -> None:
    """Write a :class:`Layout` as a flat, single-structure GDSII file.

    Parameters
    ----------
    layout:
        Layout to serialise.
    path:
        Output file path.
    layer_numbers:
        Optional mapping from layer names to GDS layer numbers.  Unmapped
        layers are numbered in sorted-name order starting at 1.
    """
    if layer_numbers is None:
        layer_numbers = {name: i + 1 for i, name in enumerate(layout.layers())}

    meters_per_dbu = 1e-9 / layout.dbu_per_nm if layout.dbu_per_nm else 1e-9
    timestamp = [2014, 6, 1, 0, 0, 0]  # fixed stamp keeps output deterministic

    records: List[bytes] = [
        _encode_record(HEADER, _INT16, [600]),
        _encode_record(BGNLIB, _INT16, timestamp * 2),
        _encode_record(LIBNAME, _ASCII, layout.name or "repro"),
        _encode_record(UNITS, _REAL8, [1e-3, meters_per_dbu]),
        _encode_record(BGNSTR, _INT16, timestamp * 2),
        _encode_record(STRNAME, _ASCII, layout.name or "TOP"),
    ]
    for shape in layout:
        layer_number = layer_numbers.get(shape.layer, 1)
        xy: List[int] = []
        for vertex in shape.polygon.vertices:
            xy.extend((vertex.x, vertex.y))
        # GDSII boundaries repeat the first vertex to close the outline.
        xy.extend((shape.polygon.vertices[0].x, shape.polygon.vertices[0].y))
        records.append(_encode_record(BOUNDARY, _NO_DATA, b""))
        records.append(_encode_record(LAYER, _INT16, [layer_number]))
        records.append(_encode_record(DATATYPE, _INT16, [0]))
        records.append(_encode_record(XY, _INT32, xy))
        records.append(_encode_record(ENDEL, _NO_DATA, b""))
    records.append(_encode_record(ENDSTR, _NO_DATA, b""))
    records.append(_encode_record(ENDLIB, _NO_DATA, b""))

    Path(path).write_bytes(b"".join(records))
