"""Layout I/O: GDSII stream subset and JSON exchange format."""

from repro.io.gds import read_gds, write_gds
from repro.io.jsonio import dumps, loads, read_json, write_json

__all__ = [
    "read_gds",
    "write_gds",
    "read_json",
    "write_json",
    "dumps",
    "loads",
]
