"""Persistent worker pool executing decomposition jobs for the server.

The pool is created once at server startup and lives until drain: workers
are long-lived processes, each holding its own :class:`Decomposer` wiring
and its own handle on the component cache.  With ``cache_db`` set, every
worker opens the same SQLite store (:mod:`repro.runtime.sqlite_cache`), so a
standard cell solved by one worker is a cache hit for every other worker,
for every later request, and for the next server instance pointed at the
same file.  Without it, each worker keeps a process-private in-memory LRU —
still effective for repeated cells within the worker's own request stream.

Admission is **priority-aware**: jobs wait in a smallest-estimated-cost-first
queue (cost ≈ vertices for a component job, shapes for a layout job) and are
handed to the executor only when a worker is free, so a small interactive
request overtakes the long tail of a large batch instead of queueing behind
it.  Pure cost order would let a steady stream of small jobs starve a big
one forever; an **age bump** prevents that — once the oldest queued job has
waited ``starvation_age_seconds``, it is dispatched next regardless of cost.
Queue depth per priority class (``interactive`` vs ``batch``) and the bump
count are exposed through :meth:`stats` (and from there ``/stats`` and
``/metrics``).

Environments that cannot fork (locked-down sandboxes) are detected at
startup by running a probe job through the pool; on failure the pool falls
back to long-lived *threads* in the server process, trading parallelism for
availability — the same correctness, since jobs never share mutable state.
The active mode is reported by ``/healthz`` and ``/stats``.

Jobs and results are plain JSON-level dicts (see
:mod:`repro.service.protocol`), which keeps the process boundary cheap and
version-skew-proof.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.decomposer import Decomposer
from repro.obs.hist import Histogram
from repro.runtime.cache import open_cache
from repro.runtime.scheduler import resolve_workers
from repro.service import protocol

#: The queue's priority classes, in display order.
PRIORITY_CLASSES = ("interactive", "batch")

#: Per-thread (and, in process mode, per-process) worker state.  A
#: ``threading.local`` covers both executors: a worker process runs its
#: initializer and all its jobs on one thread, a thread-pool worker is a
#: thread by definition.
_worker_state = threading.local()


def _worker_init(cache_db: Optional[str], cache_max_entries: Optional[int]) -> None:
    """Executor initializer: build this worker's cache handle exactly once."""
    _worker_state.cache = open_cache(db_path=cache_db, max_entries=cache_max_entries)


def _worker_run(job: Dict) -> Dict:
    """Execute one job dict inside a worker (process or thread).

    ``kind`` selects the work unit: whole-layout decomposition (the default,
    what ``POST /decompose``/``/batch`` enqueue) or a single divided
    component (``POST /component`` and each entry of ``POST /components``,
    the cluster's unit of work — solved against this worker's component
    cache so routed-by-hash repeats are affinity hits).
    """
    cache = getattr(_worker_state, "cache", None)
    if job.get("kind") == "component":
        from repro.runtime.component_io import solve_component_job

        return solve_component_job(job, cache)
    return protocol.run_job(job, lambda options: Decomposer(options, cache=cache))


def _worker_probe() -> str:
    """Startup canary proving the pool can actually run code."""
    return "ok"


def estimate_job_cost(job: Dict) -> int:
    """Estimate one job's solve cost for the priority queue.

    Deliberately cheap and structural — vertices for a component, shapes for
    a layout — because the estimate only has to *order* jobs (small before
    large), not predict wall time.  Binary-framed component jobs carry the
    vertex count as ``num_vertices`` (the decode already read it); JSON ones
    fall back to counting the wire dict's entries.
    """
    if job.get("kind") == "component":
        hint = job.get("num_vertices")
        if isinstance(hint, int) and hint > 0:
            return hint
        graph = job.get("graph")
        vertices = graph.get("vertices") if isinstance(graph, dict) else None
        return max(1, len(vertices)) if isinstance(vertices, list) else 1
    layout = job.get("layout")
    shapes = layout.get("shapes") if isinstance(layout, dict) else None
    return max(1, len(shapes)) if isinstance(shapes, list) else 1


@dataclass
class PoolConfig:
    """Static pool configuration fixed at server startup."""

    #: ``0`` = one worker per CPU, otherwise the worker count (min 1).
    workers: int = 0
    #: Path of the shared SQLite component cache; ``None`` = per-worker LRU.
    cache_db: Optional[str] = None
    #: Entry bound applied to whichever cache backend is in use.
    cache_max_entries: Optional[int] = None
    #: Skip process workers and run on threads (used by tests that need to
    #: reach into in-flight jobs; also a sane choice under ``workers=1``).
    force_inline: bool = False
    #: Oldest-job wait beyond which the age bump overrides cost order.
    #: ``0`` degenerates to FIFO dispatch.
    starvation_age_seconds: float = 5.0
    #: Ship component-job graph frames to process workers through
    #: ``multiprocessing.shared_memory`` (ignored in thread mode, where the
    #: worker already shares the server's address space).
    use_shared_memory: bool = True
    #: Frames below this many bytes ship inline even with shared memory on;
    #: ``None`` uses :data:`repro.runtime.shm_transport.SHM_MIN_FRAME_BYTES`.
    shm_min_frame_bytes: Optional[int] = None


@dataclass
class _PendingJob:
    """One admitted job waiting for (or holding) a worker."""

    seq: int
    cost: int
    klass: str
    enqueued_at: float
    job: Dict
    future: Future = field(default_factory=Future)
    dispatched: bool = False


class WorkerPool:
    """Long-lived executor of decomposition jobs with graceful degradation."""

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.workers = resolve_workers(config.workers)
        self.mode = "unstarted"
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._executor = None
        self._stopping = False
        self._seq = 0
        self._active = 0
        #: Cost order (lazy deletion: entries stay until popped).
        self._heap: List[Tuple[int, int, _PendingJob]] = []
        #: Arrival order, for the age-based anti-starvation bump.
        self._fifo: Deque[_PendingJob] = deque()
        self._queued: Dict[str, int] = {klass: 0 for klass in PRIORITY_CLASSES}
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "priority_bumps": 0,
            "shm_jobs": 0,
        }
        #: Admission-queue wait (enqueue → dispatch to a worker), rendered
        #: as ``repro_pool_queue_wait_seconds`` on ``/metrics``.  The owning
        #: server may additionally attach its stage HistogramVec here so
        #: queue waits show up as a ``queue_wait`` stage alongside the span
        #: stages (see :mod:`repro.obs.observer`).
        self.queue_wait = Histogram()
        self.stage_histograms = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Create the workers; must be called exactly once before ``submit``."""
        if self._executor is not None:
            raise RuntimeError("pool already started")
        self._executor, self.mode = self._build_executor()

    def _build_executor(self):
        initargs = (self.config.cache_db, self.config.cache_max_entries)
        if not self.config.force_inline:
            executor = None
            try:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=initargs,
                )
                # Force worker creation now: a pool that cannot fork must
                # fail at startup (and degrade), not on the first request.
                executor.submit(_worker_probe).result(timeout=60)
                return executor, "process"
            except Exception:
                # Partially-forked workers, pipes and the queue-management
                # thread must not leak into the thread-mode fallback.
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
        executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-worker",
            initializer=_worker_init,
            initargs=initargs,
        )
        # Probe this mode too: if the worker initializer itself is broken
        # (e.g. an unusable cache_db path), the server must fail at startup
        # with the real error — not report healthy and 500 every request.
        try:
            executor.submit(_worker_probe).result(timeout=60)
        except Exception:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        return executor, "inline"

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; with ``wait`` the call blocks until jobs finish.

        ``wait=True`` drains the admission queue too — queued jobs were
        admitted, so a graceful drain completes them.  ``wait=False``
        cancels everything still queued and abandons the executor.
        """
        with self._lock:
            self._stopping = True
            if wait:
                self._drained.wait_for(
                    lambda: self._active == 0 and not self._pending_count_locked()
                )
                cancelled: List[_PendingJob] = []
            else:
                cancelled = [entry for entry in self._fifo if not entry.dispatched]
                for entry in cancelled:
                    entry.dispatched = True
                    self._queued[entry.klass] -= 1
                self._fifo.clear()
                self._heap.clear()
            executor, self._executor = self._executor, None
        for entry in cancelled:
            entry.future.cancel()
        if executor is not None:
            executor.shutdown(wait=wait)

    # -------------------------------------------------------------- serving
    def submit(self, job: Dict, klass: str = "interactive") -> Future:
        """Queue one job dict; the future resolves to the response payload.

        ``klass`` is the priority class reported in queue-depth telemetry
        (``interactive`` for single requests, ``batch`` for batch members);
        dispatch order itself is by estimated cost, smallest first.
        """
        if klass not in self._queued:
            klass = "interactive"
        cost = estimate_job_cost(job)
        job, segment = self._upgrade_transport(job)
        entry = _PendingJob(
            seq=0,
            cost=cost,
            klass=klass,
            enqueued_at=time.monotonic(),
            job=job,
        )
        if segment is not None:
            # Creator-unlinks lifecycle: the outer future settles exactly
            # once (result, error or drain-time cancellation), strictly
            # after the worker's one read.
            entry.future.add_done_callback(lambda _future: segment.unlink())
        try:
            with self._lock:
                if self._stopping or self.mode == "unstarted":
                    raise RuntimeError("pool is not running")
                self._seq += 1
                entry.seq = self._seq
                self._counters["submitted"] += 1
                if segment is not None:
                    self._counters["shm_jobs"] += 1
                self._queued[entry.klass] += 1
                heapq.heappush(self._heap, (entry.cost, entry.seq, entry))
                self._fifo.append(entry)
                failures, submissions = self._dispatch_locked()
        except BaseException:
            if segment is not None:
                segment.unlink()
            raise
        entry.future.add_done_callback(self._on_done)
        self._after_dispatch(failures, submissions)
        return entry.future

    def _upgrade_transport(self, job: Dict):
        """Move a component job's graph frame into shared memory when useful.

        Only worth it in process mode (thread workers share this address
        space already); any shared-memory failure quietly keeps the inline
        frame — transport is an optimisation, never a correctness concern.
        Returns ``(job, segment)``; a non-``None`` segment is owned by the
        caller, to be unlinked when the job's future settles.
        """
        frame = job.get("graph_frame")
        if (
            frame is None
            or self.mode != "process"
            or not self.config.use_shared_memory
        ):
            return job, None
        from repro.runtime.shm_transport import maybe_segment

        segment = maybe_segment(frame, self.config.shm_min_frame_bytes)
        if segment is None:
            return job, None
        shipped = {key: value for key, value in job.items() if key != "graph_frame"}
        shipped["graph_shm"] = segment.descriptor()
        return shipped, segment

    # ----------------------------------------------------------- dispatching
    def _pending_count_locked(self) -> int:
        return sum(self._queued.values())

    def _pick_locked(self) -> Optional[_PendingJob]:
        """Choose the next job: cheapest, unless the oldest has starved."""
        while self._fifo and self._fifo[0].dispatched:
            self._fifo.popleft()
        while self._heap and self._heap[0][2].dispatched:
            heapq.heappop(self._heap)
        if not self._fifo:
            return None
        oldest = self._fifo[0]
        cheapest = self._heap[0][2]
        age = time.monotonic() - oldest.enqueued_at
        if oldest is not cheapest and age >= self.config.starvation_age_seconds:
            self._counters["priority_bumps"] += 1
            chosen = oldest
        else:
            chosen = cheapest
        chosen.dispatched = True
        self._queued[chosen.klass] -= 1
        waited = time.monotonic() - chosen.enqueued_at
        self.queue_wait.observe(waited)
        if self.stage_histograms is not None:
            self.stage_histograms.observe("queue_wait", waited)
        return chosen

    def _dispatch_locked(
        self,
    ) -> Tuple[
        List[Tuple[_PendingJob, BaseException]], List[Tuple[_PendingJob, Future]]
    ]:
        """Feed free workers from the queue (caller holds the lock).

        Returns ``(failures, submissions)``.  The caller must process both
        *after* releasing the lock: failed entries get their futures failed,
        submitted entries get their done-callback attached.  Attaching the
        callback under the lock would deadlock — a job that finishes before
        ``add_done_callback`` runs invokes the callback synchronously on
        this thread, and :meth:`_on_worker_done` re-acquires the lock.
        """
        failures: List[Tuple[_PendingJob, BaseException]] = []
        submissions: List[Tuple[_PendingJob, Future]] = []
        while self._active < self.workers:
            if not self._pending_count_locked():
                break
            entry = self._pick_locked()
            if entry is None:
                break
            try:
                inner = self._submit_to_executor_locked(entry.job)
            except Exception as exc:
                # Rebuild failed too: fail this job, keep draining the queue
                # (the next dispatch retries a fresh executor).
                failures.append((entry, exc))
                continue
            self._active += 1
            submissions.append((entry, inner))
        return failures, submissions

    def _after_dispatch(
        self,
        failures: List[Tuple[_PendingJob, BaseException]],
        submissions: List[Tuple[_PendingJob, Future]],
    ) -> None:
        """Lock-free tail of a dispatch round: wire callbacks, fail entries."""
        for entry, inner in submissions:
            inner.add_done_callback(
                lambda inner_future, pending=entry: self._on_worker_done(
                    pending, inner_future
                )
            )
        for entry, exc in failures:
            entry.future.set_exception(exc)

    def _submit_to_executor_locked(self, job: Dict) -> Future:
        if self._executor is None:
            self._executor, self.mode = self._build_executor()
        try:
            return self._executor.submit(_worker_run, job)
        except Exception:
            # A worker died hard (OOM kill) and broke the pool: rebuild it
            # once and retry, so one bad request cannot take the service
            # down for good.
            self._executor.shutdown(wait=False)
            self._executor, self.mode = self._build_executor()
            return self._executor.submit(_worker_run, job)

    def _on_worker_done(self, entry: _PendingJob, inner: Future) -> None:
        with self._lock:
            self._active -= 1
            failures, submissions = self._dispatch_locked()
            if self._active == 0 and not self._pending_count_locked():
                self._drained.notify_all()
        self._after_dispatch(failures, submissions)
        # Propagate outside the lock: the outer future's done-callbacks (the
        # server's slot release, user code) must never run under it.
        if inner.cancelled():
            entry.future.cancel()
            return
        exc = inner.exception()
        if exc is not None:
            entry.future.set_exception(exc)
        else:
            entry.future.set_result(inner.result())

    def _on_done(self, future: Future) -> None:
        with self._lock:
            if future.cancelled() or future.exception() is not None:
                self._counters["failed"] += 1
            else:
                self._counters["completed"] += 1

    def stats(self) -> Dict[str, object]:
        """Snapshot for ``/stats``."""
        with self._lock:
            counters = dict(self._counters)
            queue_depth = dict(self._queued)
            active = self._active
        return {
            "mode": self.mode,
            "workers": self.workers,
            "active": active,
            "queue_depth": queue_depth,
            **counters,
        }
