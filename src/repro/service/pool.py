"""Persistent worker pool executing decomposition jobs for the server.

The pool is created once at server startup and lives until drain: workers
are long-lived processes, each holding its own :class:`Decomposer` wiring
and its own handle on the component cache.  With ``cache_db`` set, every
worker opens the same SQLite store (:mod:`repro.runtime.sqlite_cache`), so a
standard cell solved by one worker is a cache hit for every other worker,
for every later request, and for the next server instance pointed at the
same file.  Without it, each worker keeps a process-private in-memory LRU —
still effective for repeated cells within the worker's own request stream.

Environments that cannot fork (locked-down sandboxes) are detected at
startup by running a probe job through the pool; on failure the pool falls
back to long-lived *threads* in the server process, trading parallelism for
availability — the same correctness, since jobs never share mutable state.
The active mode is reported by ``/healthz`` and ``/stats``.

Jobs and results are plain JSON-level dicts (see
:mod:`repro.service.protocol`), which keeps the process boundary cheap and
version-skew-proof.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.decomposer import Decomposer
from repro.runtime.cache import open_cache
from repro.runtime.scheduler import resolve_workers
from repro.service import protocol

#: Per-thread (and, in process mode, per-process) worker state.  A
#: ``threading.local`` covers both executors: a worker process runs its
#: initializer and all its jobs on one thread, a thread-pool worker is a
#: thread by definition.
_worker_state = threading.local()


def _worker_init(cache_db: Optional[str], cache_max_entries: Optional[int]) -> None:
    """Executor initializer: build this worker's cache handle exactly once."""
    _worker_state.cache = open_cache(db_path=cache_db, max_entries=cache_max_entries)


def _worker_run(job: Dict) -> Dict:
    """Execute one job dict inside a worker (process or thread).

    ``kind`` selects the work unit: whole-layout decomposition (the default,
    what ``POST /decompose``/``/batch`` enqueue) or a single divided
    component (``POST /component``, the cluster's unit of work — solved
    against this worker's component cache so routed-by-hash repeats are
    affinity hits).
    """
    cache = getattr(_worker_state, "cache", None)
    if job.get("kind") == "component":
        from repro.runtime.component_io import solve_component_job

        return solve_component_job(job, cache)
    return protocol.run_job(job, lambda options: Decomposer(options, cache=cache))


def _worker_probe() -> str:
    """Startup canary proving the pool can actually run code."""
    return "ok"


@dataclass
class PoolConfig:
    """Static pool configuration fixed at server startup."""

    #: ``0`` = one worker per CPU, otherwise the worker count (min 1).
    workers: int = 0
    #: Path of the shared SQLite component cache; ``None`` = per-worker LRU.
    cache_db: Optional[str] = None
    #: Entry bound applied to whichever cache backend is in use.
    cache_max_entries: Optional[int] = None
    #: Skip process workers and run on threads (used by tests that need to
    #: reach into in-flight jobs; also a sane choice under ``workers=1``).
    force_inline: bool = False


class WorkerPool:
    """Long-lived executor of decomposition jobs with graceful degradation."""

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.workers = resolve_workers(config.workers)
        self.mode = "unstarted"
        self._lock = threading.Lock()
        self._executor = None
        self._counters = {"submitted": 0, "completed": 0, "failed": 0}

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Create the workers; must be called exactly once before ``submit``."""
        if self._executor is not None:
            raise RuntimeError("pool already started")
        self._executor, self.mode = self._build_executor()

    def _build_executor(self):
        initargs = (self.config.cache_db, self.config.cache_max_entries)
        if not self.config.force_inline:
            executor = None
            try:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_init,
                    initargs=initargs,
                )
                # Force worker creation now: a pool that cannot fork must
                # fail at startup (and degrade), not on the first request.
                executor.submit(_worker_probe).result(timeout=60)
                return executor, "process"
            except Exception:
                # Partially-forked workers, pipes and the queue-management
                # thread must not leak into the thread-mode fallback.
                if executor is not None:
                    executor.shutdown(wait=False, cancel_futures=True)
        executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-worker",
            initializer=_worker_init,
            initargs=initargs,
        )
        # Probe this mode too: if the worker initializer itself is broken
        # (e.g. an unusable cache_db path), the server must fail at startup
        # with the real error — not report healthy and 500 every request.
        try:
            executor.submit(_worker_probe).result(timeout=60)
        except Exception:
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        return executor, "inline"

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; with ``wait`` the call blocks until jobs finish."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    # -------------------------------------------------------------- serving
    def submit(self, job: Dict) -> Future:
        """Queue one job dict; the future resolves to the response payload."""
        with self._lock:
            if self._executor is None:
                raise RuntimeError("pool is not running")
            try:
                future = self._executor.submit(_worker_run, job)
            except Exception:
                # A worker died hard (OOM kill) and broke the pool: rebuild
                # it once and retry, so one bad request cannot take the
                # service down for good.
                self._executor.shutdown(wait=False)
                self._executor, self.mode = self._build_executor()
                future = self._executor.submit(_worker_run, job)
            self._counters["submitted"] += 1
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: Future) -> None:
        with self._lock:
            if future.cancelled() or future.exception() is not None:
                self._counters["failed"] += 1
            else:
                self._counters["completed"] += 1

    def stats(self) -> Dict[str, object]:
        """Snapshot for ``/stats``."""
        with self._lock:
            counters = dict(self._counters)
        return {"mode": self.mode, "workers": self.workers, **counters}
