"""The asyncio decomposition server.

:class:`DecompositionServer` is the long-running front end of the farm: an
``asyncio`` accept loop speaking minimal HTTP/1.1 (:mod:`repro.service.http`)
in front of the persistent :class:`~repro.service.pool.WorkerPool`.

Endpoints
---------

``POST /decompose``
    One layout in (JSON or base64 GDS), masks + summary out.  See
    :mod:`repro.service.protocol` for the exact schema.
``POST /batch``
    Many layouts in one request; items share the pool and the cache.
``GET /healthz``
    Liveness: status, pool mode, in-flight count, uptime.
``GET /stats``
    Request counters, pool counters, and component-cache effectiveness
    (cumulative *and* since-startup when the SQLite cache is attached).

Operational behaviour
---------------------

* **Admission control** — at most ``queue_limit`` jobs may be queued or
  running; beyond that the server answers ``503`` with a ``Retry-After``
  header instead of building an unbounded backlog.  Load shedding at the
  door is what keeps tail latency sane under overload.
* **Per-request timeouts** — a solve that exceeds ``request_timeout``
  seconds answers ``504``; the worker finishes (and caches) in the
  background, so a retry is typically a cache hit.
* **Graceful drain** — SIGTERM/SIGINT stop the accept loop, let every
  admitted request finish, shut the pool down, then exit.  In-flight work is
  never dropped.

Results are bit-identical to direct :meth:`Decomposer.decompose` calls; the
server adds scheduling, not semantics.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.service.http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    HttpRequest,
    MAX_HEADER_BYTES,
    error_body,
    json_body,
    read_request,
    write_response,
)
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.protocol import (
    ProtocolError,
    parse_batch_request,
    parse_decompose_request,
)


@dataclass
class ServerConfig:
    """Static configuration of one :class:`DecompositionServer`."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (reported by :meth:`start`).
    port: int = 8000
    #: Worker processes; ``0`` = one per CPU.
    workers: int = 0
    #: Maximum queued + in-flight jobs before requests are shed with 503.
    queue_limit: int = 32
    #: Per-request solve budget in seconds (504 beyond it).
    request_timeout: float = 300.0
    #: Value of the ``Retry-After`` header on 503 responses.
    retry_after_seconds: int = 1
    #: Shared SQLite component cache; ``None`` = per-worker in-memory LRU.
    cache_db: Optional[str] = None
    cache_max_entries: Optional[int] = None
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Seconds a connection may idle before sending a complete request.
    #: Bounds how long an idle/slowloris peer can stall a graceful drain.
    header_timeout: float = 30.0
    #: Run jobs on threads in-process instead of worker processes.
    force_inline_pool: bool = False


class DecompositionServer:
    """Asyncio JSON-over-HTTP decomposition service.

    Parameters
    ----------
    config:
        Static settings; see :class:`ServerConfig`.
    pre_dispatch_hook:
        Test seam: a blocking callable invoked (on an executor thread) after
        a request is admitted but before its jobs reach the pool.  Lets the
        lifecycle tests hold a request in flight deterministically; ``None``
        in production.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        pre_dispatch_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self._pre_dispatch_hook = pre_dispatch_hook
        self.pool = WorkerPool(
            PoolConfig(
                workers=self.config.workers,
                cache_db=self.config.cache_db,
                cache_max_entries=self.config.cache_max_entries,
                force_inline=self.config.force_inline_pool,
            )
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._inflight = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_at = 0.0
        self._counters = {
            "received": 0,
            "served": 0,
            "rejected": 0,
            "failed": 0,
            "timeouts": 0,
            "invalid": 0,
        }
        self._cache_stats_start: Dict[str, int] = {}

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> Tuple[str, int]:
        """Start the pool and the accept loop; return the bound (host, port)."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        # Pool startup forks workers and may probe-fallback: keep the event
        # loop responsive while it happens.
        await loop.run_in_executor(None, self.pool.start)
        try:
            if self.config.cache_db is not None:
                self._cache_stats_start = await loop.run_in_executor(
                    None, self._read_cache_totals
                )
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_HEADER_BYTES,
            )
        except Exception:
            # e.g. EADDRINUSE: don't leak the freshly-forked worker pool.
            await loop.run_in_executor(None, lambda: self.pool.shutdown(wait=False))
            raise
        self._started_at = time.monotonic()
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def shutdown(self) -> None:
        """Drain: stop accepting, finish in-flight work, stop the pool."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # wait_closed() does not wait for handler coroutines (3.11): drain
        # the connections we track ourselves, then the pool.
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.pool.shutdown(wait=True))
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until a drain (signal- or call-initiated) completes."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    # ------------------------------------------------------------- requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            try:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, self.config.max_body_bytes),
                        timeout=self.config.header_timeout,
                    )
                except asyncio.TimeoutError:
                    # Idle or trickling peer: close it.  Also what bounds a
                    # drain — shutdown() gathers connection tasks, and this
                    # guarantees un-admitted ones finish within the timeout.
                    return
                if request is None:
                    return
                self._counters["received"] += 1
                status, body, extra = await self._dispatch(request)
            except HttpError as exc:
                self._counters["invalid"] += 1
                status, body = error_body(exc.status, exc.message)
                extra = None
            except Exception as exc:  # defensive: a handler bug must not kill the loop
                self._counters["failed"] += 1
                status, body = error_body(500, f"internal error: {exc}")
                extra = None
            await write_response(writer, status, body, extra_headers=extra)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        route = (request.method, request.path.split("?", 1)[0])
        if route == ("GET", "/healthz"):
            return 200, json_body(self._healthz()), None
        if route == ("GET", "/stats"):
            # The cache block reads the SQLite counters — synchronous I/O
            # that can wait on a writer's lock; keep it off the event loop.
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(None, self._stats)
            return 200, json_body(stats), None
        if route == ("POST", "/decompose"):
            return await self._serve_jobs(request, batch=False)
        if route == ("POST", "/batch"):
            return await self._serve_jobs(request, batch=True)
        if route[1] in ("/healthz", "/stats", "/decompose", "/batch"):
            return (*error_body(405, f"{request.method} not allowed on {route[1]}"), None)
        return (*error_body(404, f"no such endpoint {route[1]!r}"), None)

    async def _serve_jobs(
        self, request: HttpRequest, batch: bool
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        loop = asyncio.get_running_loop()

        def _decode_jobs() -> List[Dict]:
            # Decoding a (up to max_body_bytes) JSON body and rebuilding the
            # layout is CPU work: off the event loop, or one big request
            # stalls /healthz and every other connection.
            payload = request.json()
            if batch:
                return parse_batch_request(payload)
            return [parse_decompose_request(payload)]

        try:
            jobs = await loop.run_in_executor(None, _decode_jobs)
        except ProtocolError as exc:
            self._counters["invalid"] += 1
            return (*error_body(400, str(exc)), None)

        if len(jobs) > self.config.queue_limit:
            # Would never fit, even on an idle server: a permanent-client
            # error, not transient overload — 503 + Retry-After would send
            # the client into an infinite retry loop.
            self._counters["invalid"] += 1
            status, body = error_body(
                400,
                f"batch of {len(jobs)} layouts exceeds the server's queue "
                f"capacity of {self.config.queue_limit}; split the batch",
            )
            return status, body, None
        if self._draining or self._inflight + len(jobs) > self.config.queue_limit:
            self._counters["rejected"] += 1
            reason = "server is draining" if self._draining else "queue is full"
            status, body = error_body(
                503, f"{reason}; retry later", retry_after=self.config.retry_after_seconds
            )
            return status, body, {"Retry-After": str(self.config.retry_after_seconds)}

        # A slot is held from admission until its job leaves the pool — on
        # the happy path that is when gather() resolves, but a 504'd request
        # abandons jobs that keep running, so each submitted job releases
        # its own slot from a done-callback instead of this coroutine.
        self._inflight += len(jobs)

        def _release_slot(_future=None) -> None:
            try:
                loop.call_soon_threadsafe(self._decrement_inflight)
            except RuntimeError:  # loop already closed (late drain)
                self._inflight -= 1

        def _submit_all():
            """Submit every job (off-loop: a broken-pool rebuild blocks).

            Returns (submitted futures, first error); never raises, so the
            caller always knows how many slots the callbacks now own.
            """
            submitted = []
            for job in jobs:
                try:
                    future = self.pool.submit(job)
                except Exception as exc:  # pool broken beyond repair
                    return submitted, exc
                future.add_done_callback(_release_slot)
                submitted.append(future)
            return submitted, None

        unsubmitted = len(jobs)
        try:
            if self._pre_dispatch_hook is not None:
                await loop.run_in_executor(None, self._pre_dispatch_hook)
            futures, submit_error = await loop.run_in_executor(None, _submit_all)
            unsubmitted = len(jobs) - len(futures)
            if submit_error is not None:
                raise submit_error
            try:
                results = await asyncio.wait_for(
                    asyncio.gather(*[asyncio.wrap_future(f) for f in futures]),
                    timeout=self.config.request_timeout,
                )
            except asyncio.TimeoutError:
                self._counters["timeouts"] += 1
                status, body = error_body(
                    504,
                    f"decomposition exceeded {self.config.request_timeout}s; "
                    "the result will be cached for a retry",
                )
                return status, body, None
        except ProtocolError as exc:
            self._counters["invalid"] += 1
            return (*error_body(400, str(exc)), None)
        except ReproError as exc:
            self._counters["failed"] += 1
            return (*error_body(422, f"decomposition failed: {exc}"), None)
        except Exception as exc:
            self._counters["failed"] += 1
            return (*error_body(500, f"worker failure: {exc}"), None)
        finally:
            # Only the never-submitted jobs' slots; the rest are released by
            # their done-callbacks when the pool really finishes them.
            self._inflight -= unsubmitted

        self._counters["served"] += len(jobs)

        def _encode_response() -> bytes:
            # Mask payloads can be multi-MB; serialise off-loop too.
            if not batch:
                return json_body(results[0])
            aggregate = {
                "layouts": len(results),
                "conflicts": sum(r["conflicts"] for r in results),
                "stitches": sum(r["stitches"] for r in results),
            }
            return json_body({"items": results, "aggregate": aggregate})

        return 200, await loop.run_in_executor(None, _encode_response), None

    def _decrement_inflight(self) -> None:
        self._inflight -= 1

    # ------------------------------------------------------------ telemetry
    def _healthz(self) -> Dict[str, object]:
        return {
            "status": "draining" if self._draining else "ok",
            "mode": self.pool.mode,
            "workers": self.pool.workers,
            "inflight": self._inflight,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
        }

    def _stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "server": {
                **self._counters,
                "inflight": self._inflight,
                "queue_limit": self.config.queue_limit,
                "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            },
            "pool": self.pool.stats(),
        }
        if self.config.cache_db is not None:
            totals = self._read_cache_totals()
            session = {
                key: totals[key] - self._cache_stats_start.get(key, 0)
                for key in ("hits", "misses", "stores", "evictions")
            }
            stats["cache"] = {
                "backend": "sqlite",
                "path": str(self.config.cache_db),
                **totals,
                "session": session,
            }
        else:
            stats["cache"] = {
                "backend": "memory",
                "note": "per-worker LRU caches; counters not aggregated",
            }
        return stats

    def _read_cache_totals(self) -> Dict[str, int]:
        from repro.runtime.sqlite_cache import read_persistent_stats

        zeros = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0, "entries": 0}
        assert self.config.cache_db is not None
        return read_persistent_stats(self.config.cache_db) or zeros


def run_server(config: ServerConfig) -> int:
    """Blocking entry point used by ``repro-decompose serve``.

    Prints the bound address on startup (machine-parsable first line, which
    is how the subprocess tests and examples discover an ephemeral port) and
    drains cleanly on SIGTERM/SIGINT.
    """

    async def _main() -> None:
        server = DecompositionServer(config)
        host, port = await server.start()
        server.install_signal_handlers()
        print(f"repro-serve: listening on http://{host}:{port}", flush=True)
        print(
            f"repro-serve: pool mode={server.pool.mode} workers={server.pool.workers} "
            f"queue_limit={config.queue_limit} "
            f"cache={'sqlite:' + str(config.cache_db) if config.cache_db else 'memory'}",
            flush=True,
        )
        await server.wait_stopped()
        print("repro-serve: drained, exiting", flush=True)

    asyncio.run(_main())
    return 0


class ServerThread:
    """A :class:`DecompositionServer` on a background thread (tests, examples).

    ::

        with ServerThread(ServerConfig(port=0)) as (host, port):
            client = ServiceClient(host, port)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        pre_dispatch_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.server = DecompositionServer(config, pre_dispatch_hook=pre_dispatch_hook)
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        async def _main() -> None:
            try:
                self.address = await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.wait_stopped()

        asyncio.run(_main())

    def stop(self, timeout: float = 60.0) -> None:
        """Drain and join; idempotent."""
        if self._thread is None or not self._thread.is_alive():
            return
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(self.server.shutdown(), self._loop)
        self._thread.join(timeout)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
