"""The asyncio decomposition server.

:class:`DecompositionServer` is the long-running front end of the farm: the
:class:`~repro.service.base.BaseHttpServer` chassis (keep-alive HTTP/1.1
accept loop) in front of the persistent :class:`~repro.service.pool.WorkerPool`.

Endpoints
---------

``POST /decompose``
    One layout in (JSON or base64 GDS), masks + summary out.  See
    :mod:`repro.service.protocol` for the exact schema.
``POST /batch``
    Many layouts in one request; items share the pool and the cache.
``POST /component``
    One decomposition-graph *component* in, canonical coloring out (see
    :mod:`repro.runtime.component_io`).  This is the work unit of the
    cluster: a coordinator routes each component to its cache-owning node,
    so a node answers from its component cache whenever any coordinator has
    routed the same canonical component here before.
``POST /components``
    A **micro-batch** of components in one round trip — how a cluster
    coordinator ships everything this node owns for one layout, turning
    per-component request amplification into one request per owning node.
    The batch occupies a single admission slot (its members are ordered by
    the pool's priority queue, not by the HTTP queue limit) and the
    response carries per-component results: one bad component yields an
    error entry for itself, never a failure of its batch siblings.
``GET /healthz``
    Liveness: status, pool mode, in-flight count, uptime.
``GET /stats``
    Request counters, pool counters, component-affinity counters, and
    component-cache effectiveness (cumulative *and* since-startup when the
    SQLite cache is attached).
``GET /metrics``
    The same counters in Prometheus text exposition format.

Operational behaviour
---------------------

* **Admission control** — at most ``queue_limit`` jobs may be queued or
  running; beyond that the server answers ``503`` with a ``Retry-After``
  header instead of building an unbounded backlog.  Load shedding at the
  door is what keeps tail latency sane under overload.
* **Priority scheduling** — admitted jobs wait in the worker pool's
  smallest-estimated-cost-first queue (with an age-based anti-starvation
  bump), so an interactive single-layout request overtakes a large batch's
  tail instead of queueing behind it.  Queue depth per priority class is
  visible in ``/stats`` and ``/metrics``.
* **Per-request timeouts** — a solve that exceeds ``request_timeout``
  seconds answers ``504``; the worker finishes (and caches) in the
  background, so a retry is typically a cache hit.
* **Graceful drain** — SIGTERM/SIGINT stop the accept loop, let every
  admitted request finish, shut the pool down, then exit.  In-flight work is
  never dropped.

Results are bit-identical to direct :meth:`Decomposer.decompose` calls; the
server adds scheduling, not semantics.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.journal import DEFAULT_SEGMENT_BYTES
from repro.obs.observer import ObsConfig, Observer
from repro.runtime.component_io import (
    ComponentWireError,
    component_error_entry,
    options_for,
    validate_component_request,
)
from repro.service.base import BaseHttpServer, ThreadedServer
from repro.service.http import (
    CLIENT_HEADER,
    DEFAULT_MAX_BODY_BYTES,
    TRACE_HEADER,
    HttpRequest,
    client_identity,
    error_body,
    json_body,
)
from repro.service.metrics import (
    METRICS_CONTENT_TYPE,
    build_info_family,
    histogram_family,
    observability_families,
    server_metrics_text,
)
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.protocol import (
    ProtocolError,
    parse_batch_request,
    parse_decompose_request,
)

logger = logging.getLogger("repro.service.server")


@dataclass
class ServerConfig:
    """Static configuration of one :class:`DecompositionServer`."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (reported by :meth:`start`).
    port: int = 8000
    #: Worker processes; ``0`` = one per CPU.
    workers: int = 0
    #: Maximum queued + in-flight jobs before requests are shed with 503.
    queue_limit: int = 32
    #: Per-request solve budget in seconds (504 beyond it).
    request_timeout: float = 300.0
    #: Value of the ``Retry-After`` header on 503 responses.
    retry_after_seconds: int = 1
    #: Shared SQLite component cache; ``None`` = per-worker in-memory LRU.
    cache_db: Optional[str] = None
    cache_max_entries: Optional[int] = None
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Seconds a connection may idle before sending a complete request.
    #: Bounds how long an idle/slowloris peer can stall a graceful drain.
    header_timeout: float = 30.0
    #: Run jobs on threads in-process instead of worker processes.
    force_inline_pool: bool = False
    #: Oldest-queued-job wait beyond which the pool's age bump overrides
    #: smallest-cost-first dispatch (0 = FIFO).
    starvation_age_seconds: float = 5.0
    #: Accept the binary v2 ``POST /components`` frame.  ``False`` emulates a
    #: pre-v2 node (binary bodies fail JSON parsing with 400), which is how
    #: the mixed-version-cluster tests exercise the coordinator's fallback.
    binary_wire: bool = True
    #: Ship component graph frames to process workers via shared memory.
    use_shared_memory: bool = True
    #: Frames below this many bytes ship inline even with shared memory on;
    #: ``None`` uses the transport default.
    shm_min_frame_bytes: Optional[int] = None
    #: Event-journal directory; ``None`` disables tracing, the journal and
    #: the ``/trace``//``/watch`` endpoints (the near-zero-cost default).
    journal_dir: Optional[str] = None
    #: fsync every journal append (durability over throughput).
    journal_fsync: bool = False
    #: Journal segment rotation threshold in bytes.
    journal_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    #: Per-subscriber ``GET /watch`` queue bound (drop-oldest beyond it).
    watch_queue_limit: int = 256
    #: Seconds between SSE heartbeat comments on an idle ``GET /watch``.
    watch_heartbeat_seconds: float = 10.0


class DecompositionServer(BaseHttpServer):
    """Asyncio JSON-over-HTTP decomposition service.

    Parameters
    ----------
    config:
        Static settings; see :class:`ServerConfig`.
    pre_dispatch_hook:
        Test seam: a blocking callable invoked (on an executor thread) after
        a request is admitted but before its jobs reach the pool.  Lets the
        lifecycle tests hold a request in flight deterministically; ``None``
        in production.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        pre_dispatch_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.config = config or ServerConfig()
        super().__init__(
            host=self.config.host,
            port=self.config.port,
            max_body_bytes=self.config.max_body_bytes,
            header_timeout=self.config.header_timeout,
            queue_limit=self.config.queue_limit,
            request_timeout=self.config.request_timeout,
            retry_after_seconds=self.config.retry_after_seconds,
        )
        self._pre_dispatch_hook = pre_dispatch_hook
        self.pool = WorkerPool(
            PoolConfig(
                workers=self.config.workers,
                cache_db=self.config.cache_db,
                cache_max_entries=self.config.cache_max_entries,
                force_inline=self.config.force_inline_pool,
                starvation_age_seconds=self.config.starvation_age_seconds,
                use_shared_memory=self.config.use_shared_memory,
                shm_min_frame_bytes=self.config.shm_min_frame_bytes,
            )
        )
        self._counters.update(
            {
                "components": 0,
                "component_cache_hits": 0,
                "component_batches": 0,
                "batched_components": 0,
            }
        )
        self._cache_stats_start: Dict[str, int] = {}
        self.obs = Observer(
            ObsConfig(
                journal_dir=self.config.journal_dir,
                journal_fsync=self.config.journal_fsync,
                journal_segment_bytes=self.config.journal_segment_bytes,
                watch_queue_limit=self.config.watch_queue_limit,
                watch_heartbeat_seconds=self.config.watch_heartbeat_seconds,
                role="server",
            )
        )
        # Queue waits observed inside the pool surface as the ``queue_wait``
        # stage of the same histogram family the spans feed.
        self.pool.stage_histograms = self.obs.stages

    # ------------------------------------------------------------ lifecycle
    async def _on_start(self, loop: asyncio.AbstractEventLoop) -> None:
        # Pool startup forks workers and may probe-fallback: keep the event
        # loop responsive while it happens.
        await loop.run_in_executor(None, self.pool.start)
        if self.config.cache_db is not None:
            try:
                self._cache_stats_start = await loop.run_in_executor(
                    None, self._read_cache_totals
                )
            except Exception:
                await loop.run_in_executor(None, lambda: self.pool.shutdown(wait=False))
                raise

    async def _on_bind_failed(self, loop: asyncio.AbstractEventLoop) -> None:
        # e.g. EADDRINUSE: don't leak the freshly-forked worker pool.
        await loop.run_in_executor(None, lambda: self.pool.shutdown(wait=False))

    async def _on_shutdown(self, loop: asyncio.AbstractEventLoop) -> None:
        await loop.run_in_executor(None, lambda: self.pool.shutdown(wait=True))

    # ------------------------------------------------------------- requests
    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        route = (request.method, request.path.split("?", 1)[0])
        if route == ("GET", "/healthz"):
            return 200, json_body(self._healthz()), None
        if route in (("GET", "/stats"), ("GET", "/metrics")):
            # The cache block reads the SQLite counters — synchronous I/O
            # that can wait on a writer's lock; keep it off the event loop.
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(None, self._stats)
            if route[1] == "/stats":
                return 200, json_body(stats), None
            text = server_metrics_text(stats, extra_families=self._metrics_extras())
            return 200, text.encode("utf-8"), {"Content-Type": METRICS_CONTENT_TYPE}
        observability = await self._dispatch_observability(request)
        if observability is not None:
            return observability
        if route == ("POST", "/decompose"):
            return await self._serve_jobs(request, batch=False)
        if route == ("POST", "/batch"):
            return await self._serve_jobs(request, batch=True)
        if route == ("POST", "/component"):
            return await self._serve_component(request)
        if route == ("POST", "/components"):
            return await self._serve_components(request)
        known = (
            "/healthz",
            "/stats",
            "/metrics",
            "/decompose",
            "/batch",
            "/component",
            "/components",
            "/watch",
        )
        if route[1] in known:
            return (*error_body(405, f"{request.method} not allowed on {route[1]}"), None)
        return (*error_body(404, f"no such endpoint {route[1]!r}"), None)

    def _trace_headers(self, ctx) -> Optional[Dict[str, str]]:
        """Response headers advertising the request's trace id (or none)."""
        return {TRACE_HEADER: ctx.trace_id} if ctx is not None else None

    async def _serve_jobs(
        self, request: HttpRequest, batch: bool
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        loop = asyncio.get_running_loop()
        kind = "batch" if batch else "decompose"
        ctx = self.obs.begin(request.headers.get(TRACE_HEADER.lower()))
        self.obs.emit(
            ctx,
            "received",
            kind=kind,
            client=client_identity(request.headers.get(CLIENT_HEADER.lower())),
            bytes_in=len(request.body),
        )

        def _decode_jobs() -> List[Dict]:
            # Decoding a (up to max_body_bytes) JSON body and rebuilding the
            # layout is CPU work: off the event loop, or one big request
            # stalls /healthz and every other connection.
            payload = request.json()
            if batch:
                return parse_batch_request(payload)
            return [parse_decompose_request(payload)]

        try:
            with self.obs.span("parse", ctx):
                jobs = await loop.run_in_executor(None, _decode_jobs)
        except ProtocolError as exc:
            self._counters["invalid"] += 1
            self.obs.emit(ctx, "failed", status=400, message=str(exc))
            if ctx is not None:
                logger.warning(
                    "bad %s request: %s", kind, exc, extra={"trace_id": ctx.trace_id}
                )
            return (*error_body(400, str(exc)), self._trace_headers(ctx))
        for job in jobs:
            job["priority_class"] = "batch" if batch else "interactive"
            if ctx is not None:
                job["trace_id"] = ctx.trace_id

        self.obs.emit(ctx, "divided", layouts=len(jobs))
        with self.obs.span("execute", ctx):
            results, error = await self._execute_jobs(jobs)
        if error is not None:
            status = error[0]
            self.obs.emit(ctx, "failed", status=status)
            if ctx is not None:
                logger.warning(
                    "%s request failed with %d", kind, status,
                    extra={"trace_id": ctx.trace_id},
                )
            return error[0], error[1], {**(error[2] or {}), **(self._trace_headers(ctx) or {})}
        self._counters["served"] += len(jobs)

        def _encode_response() -> bytes:
            # Mask payloads can be multi-MB; serialise off-loop too.
            if not batch:
                return json_body(results[0])
            aggregate = {
                "layouts": len(results),
                "conflicts": sum(r["conflicts"] for r in results),
                "stitches": sum(r["stitches"] for r in results),
            }
            return json_body({"items": results, "aggregate": aggregate})

        with self.obs.span("encode", ctx):
            body = await loop.run_in_executor(None, _encode_response)
        self.obs.emit(
            ctx,
            "merged",
            layouts=len(results),
            conflicts=sum(r.get("conflicts", 0) for r in results),
            stitches=sum(r.get("stitches", 0) for r in results),
            names=[str(r.get("name", "")) for r in results],
            bytes_out=len(body),
        )
        return 200, body, self._trace_headers(ctx)

    def _observe_component_timings(self, outcome: Dict, ctx) -> None:
        """Feed one worker result's ``timings`` into histograms/spans, then
        strip it so response bytes stay identical with tracing on or off."""
        timings = outcome.pop("timings", None)
        if not isinstance(timings, dict):
            return
        lookup = float(timings.get("cache_lookup", 0.0))
        solve = float(timings.get("solve", 0.0))
        self.obs.stages.observe("cache_lookup", lookup)
        if not outcome.get("cache_hit"):
            self.obs.stages.observe("solve", solve)
        if ctx is not None:
            now = time.perf_counter()
            detail = outcome.get("key")
            ctx.add_span("cache_lookup", now - solve - lookup, lookup, parent="execute", detail=detail)
            if not outcome.get("cache_hit"):
                ctx.add_span("solve", now - solve, solve, parent="execute", detail=detail)

    async def _serve_component(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        loop = asyncio.get_running_loop()
        ctx = self.obs.begin(request.headers.get(TRACE_HEADER.lower()))
        self.obs.emit(
            ctx,
            "received",
            kind="component",
            client=client_identity(request.headers.get(CLIENT_HEADER.lower())),
            bytes_in=len(request.body),
        )

        def _decode_component() -> Dict:
            payload = request.json()
            validate_component_request(payload)
            return {"kind": "component", **payload}

        try:
            with self.obs.span("parse", ctx):
                job = await loop.run_in_executor(None, _decode_component)
        except (ProtocolError, ComponentWireError) as exc:
            self._counters["invalid"] += 1
            self.obs.emit(ctx, "failed", status=400, message=str(exc))
            return (*error_body(400, str(exc)), self._trace_headers(ctx))

        job["priority_class"] = "interactive"
        job.pop("trace_id", None)
        if ctx is not None:
            job["trace_id"] = ctx.trace_id
        with self.obs.span("execute", ctx):
            results, error = await self._execute_jobs([job])
        if error is not None:
            self.obs.emit(ctx, "failed", status=error[0])
            return error[0], error[1], {**(error[2] or {}), **(self._trace_headers(ctx) or {})}
        payload = results[0]
        self._observe_component_timings(payload, ctx)
        self._counters["components"] += 1
        if payload.get("cache_hit"):
            self._counters["component_cache_hits"] += 1
        body = json_body(payload)
        self.obs.emit(
            ctx,
            "completed",
            solved=1,
            total=1,
            cache_hits=int(bool(payload.get("cache_hit"))),
            bytes_out=len(body),
        )
        return 200, body, self._trace_headers(ctx)

    async def _serve_components(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        """One component micro-batch: per-component results, one admission slot."""
        loop = asyncio.get_running_loop()
        started_at = time.perf_counter()

        def _decode_binary_batch() -> Tuple[List[object], Optional[str]]:
            # The v2 hot path: packed flat-array frames, no JSON in sight.
            # Envelope damage is a request-level 400; a bad graph frame
            # inside an intact entry fails only that component.
            from repro.runtime.wire_binary import decode_components_frame

            colors, algorithm, body_trace, frames = decode_components_frame(
                request.body
            )
            if not frames:
                raise ComponentWireError("components frame carries no components")
            options_for(colors, algorithm)  # envelope-level 400
            entries: List[object] = []
            for component in frames:
                if component.error is not None:
                    entries.append(ComponentWireError(component.error))
                    continue
                entries.append(
                    {
                        "kind": "component",
                        "graph_frame": component.frame,
                        "key": component.key,
                        "colors": colors,
                        "algorithm": algorithm,
                        "num_vertices": component.flat.num_vertices,
                        "priority_class": "batch",
                    }
                )
            return entries, body_trace

        def _decode_json_batch() -> Tuple[List[object], Optional[str]]:
            payload = request.json()
            if not isinstance(payload, dict):
                raise ComponentWireError("request body must be a JSON object")
            items = payload.get("components")
            if not isinstance(items, list) or not items:
                raise ComponentWireError("'components' must be a non-empty array")
            colors = payload.get("colors", 4)
            algorithm = payload.get("algorithm", "sdp-backtrack")
            options_for(colors, algorithm)  # envelope-level 400
            body_trace = payload.get("trace_id")
            if not isinstance(body_trace, str):
                body_trace = None
            # Per-entry validation: a malformed component fails only itself
            # (its layout, on the coordinator side), never its batch
            # siblings — so errors become entries, not a request-level 400.
            entries: List[object] = []
            for item in items:
                candidate = {
                    "kind": "component",
                    "graph": item.get("graph") if isinstance(item, dict) else None,
                    "colors": colors,
                    "algorithm": algorithm,
                    "priority_class": "batch",
                }
                key = item.get("key") if isinstance(item, dict) else None
                if isinstance(key, str) and key:
                    candidate["key"] = key
                try:
                    validate_component_request(candidate)
                except ComponentWireError as exc:
                    entries.append(exc)
                    continue
                entries.append(candidate)
            return entries, body_trace

        from repro.runtime.wire_binary import COMPONENTS_V2_CONTENT_TYPE

        use_binary = (
            self.config.binary_wire
            and request.media_type() == COMPONENTS_V2_CONTENT_TYPE
        )
        decode = _decode_binary_batch if use_binary else _decode_json_batch
        try:
            entries, body_trace = await loop.run_in_executor(None, decode)
        except (ProtocolError, ComponentWireError) as exc:
            self._counters["invalid"] += 1
            self.obs.stages.observe("parse", time.perf_counter() - started_at)
            return (*error_body(400, str(exc)), None)
        parse_done = time.perf_counter()
        self.obs.stages.observe("parse", parse_done - started_at)
        # Trace id priority: wire body (frame v2 field / JSON envelope), then
        # the header (the downgrade-proof channel).  ``t0`` is the request's
        # arrival so the trace's wall time covers the parse too.
        ctx = self.obs.begin(
            body_trace or request.headers.get(TRACE_HEADER.lower()),
            started_at=started_at,
        )
        if ctx is not None:
            ctx.add_span("parse", started_at, parse_done - started_at)
        self.obs.emit(
            ctx,
            "received",
            kind="components",
            components=len(entries),
            wire="binary" if use_binary else "json",
            client=client_identity(request.headers.get(CLIENT_HEADER.lower())),
            bytes_in=len(request.body),
        )

        jobs = [entry for entry in entries if isinstance(entry, dict)]
        if ctx is not None:
            for job in jobs:
                job["trace_id"] = ctx.trace_id
        results: List = []
        execute_span = self.obs.span("execute", ctx)
        if jobs:
            # One admission slot for the whole batch: the node's overload
            # contract sheds *round trips*; the pool's priority queue owns
            # the ordering of the batch's members against other work.
            with execute_span:
                results, error = await self._execute_jobs(
                    jobs, units=1, collect_errors=True
                )
            if error is not None:
                self.obs.emit(ctx, "failed", status=error[0])
                return error[0], error[1], {
                    **(error[2] or {}),
                    **(self._trace_headers(ctx) or {}),
                }

        job_results = iter(results)
        solved = 0
        cache_hits = 0
        errors = 0
        encoded: List[Dict] = []
        for entry in entries:
            if isinstance(entry, ComponentWireError):
                errors += 1
                encoded.append(component_error_entry(400, str(entry)))
                continue
            outcome = next(job_results)
            if isinstance(outcome, BaseException):
                errors += 1
                encoded.append(self._component_failure_entry(outcome))
                continue
            self._observe_component_timings(outcome, ctx)
            solved += 1
            if outcome.get("cache_hit"):
                cache_hits += 1
            encoded.append(outcome)
        self._counters["served"] += 1
        self._counters["component_batches"] += 1
        self._counters["batched_components"] += len(entries)
        self._counters["components"] += solved
        self._counters["component_cache_hits"] += cache_hits
        with self.obs.span("encode", ctx):
            body = await loop.run_in_executor(
                None, lambda: json_body({"results": encoded})
            )
        self.obs.emit(
            ctx,
            "completed",
            solved=solved,
            total=len(entries),
            errors=errors,
            cache_hits=cache_hits,
            bytes_out=len(body),
        )
        return 200, body, self._trace_headers(ctx)

    @staticmethod
    def _component_failure_entry(exc: BaseException) -> Dict:
        """Map one failed component job onto its per-entry error envelope."""
        if isinstance(exc, (ProtocolError, ComponentWireError)):
            return component_error_entry(400, str(exc))
        if isinstance(exc, ReproError):
            return component_error_entry(422, f"component solve failed: {exc}")
        return component_error_entry(500, f"worker failure: {exc}")

    # ----------------------------------------------------- job control hooks
    async def _submit_jobs(self, loop, jobs: List[Dict], release_slot):
        def _submit_all():
            """Submit every job (off-loop: a broken-pool rebuild blocks).

            Returns (submitted futures, first error); never raises, so the
            caller always knows how many slots the callbacks now own.
            """
            submitted = []
            for job in jobs:
                klass = job.pop("priority_class", "interactive")
                try:
                    future = self.pool.submit(job, klass=klass)
                except Exception as exc:  # pool broken beyond repair
                    return submitted, exc
                future.add_done_callback(release_slot)
                submitted.append(future)
            return submitted, None

        if self._pre_dispatch_hook is not None:
            await loop.run_in_executor(None, self._pre_dispatch_hook)
        return await loop.run_in_executor(None, _submit_all)

    def _map_job_error(self, exc: BaseException):
        if isinstance(exc, (ProtocolError, ComponentWireError)):
            self._counters["invalid"] += 1
            return (*error_body(400, str(exc)), None)
        if isinstance(exc, ReproError):
            self._counters["failed"] += 1
            return (*error_body(422, f"decomposition failed: {exc}"), None)
        self._counters["failed"] += 1
        return (*error_body(500, f"worker failure: {exc}"), None)

    def _timeout_message(self) -> str:
        return (
            f"decomposition exceeded {self.config.request_timeout}s; "
            "the result will be cached for a retry"
        )

    # ------------------------------------------------------------ telemetry
    def _metrics_extras(self) -> List:
        """Observability families appended to the counter-based exposition."""
        families = [build_info_family("server")]
        families.extend(observability_families(self.obs))
        families.append(
            histogram_family(
                "repro_pool_queue_wait_seconds",
                "Seconds jobs spent in the worker pool's priority queue.",
                [({}, self.pool.queue_wait.snapshot())],
            )
        )
        return families

    def _healthz(self) -> Dict[str, object]:
        return {
            "status": "draining" if self._draining else "ok",
            "mode": self.pool.mode,
            "workers": self.pool.workers,
            "inflight": self._inflight,
            "uptime_seconds": self.uptime_seconds(),
        }

    def _stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "server": {
                **self._counters,
                "inflight": self._inflight,
                "queue_limit": self.config.queue_limit,
                "uptime_seconds": self.uptime_seconds(),
            },
            "pool": self.pool.stats(),
        }
        if self.config.cache_db is not None:
            totals = self._read_cache_totals()
            session = {
                key: totals[key] - self._cache_stats_start.get(key, 0)
                for key in ("hits", "misses", "stores", "evictions")
            }
            stats["cache"] = {
                "backend": "sqlite",
                "path": str(self.config.cache_db),
                **totals,
                "session": session,
            }
        else:
            stats["cache"] = {
                "backend": "memory",
                "note": "per-worker LRU caches; counters not aggregated",
            }
        return stats

    def _read_cache_totals(self) -> Dict[str, int]:
        from repro.runtime.sqlite_cache import read_persistent_stats

        zeros = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0, "entries": 0}
        assert self.config.cache_db is not None
        return read_persistent_stats(self.config.cache_db) or zeros


def run_server(config: ServerConfig) -> int:
    """Blocking entry point used by ``repro-decompose serve``.

    Prints the bound address on startup (machine-parsable first line, which
    is how the subprocess tests and examples discover an ephemeral port) and
    drains cleanly on SIGTERM/SIGINT.
    """

    async def _main() -> None:
        server = DecompositionServer(config)
        host, port = await server.start()
        server.install_signal_handlers()
        print(f"repro-serve: listening on http://{host}:{port}", flush=True)
        print(
            f"repro-serve: pool mode={server.pool.mode} workers={server.pool.workers} "
            f"queue_limit={config.queue_limit} "
            f"cache={'sqlite:' + str(config.cache_db) if config.cache_db else 'memory'}",
            flush=True,
        )
        await server.wait_stopped()
        print("repro-serve: drained, exiting", flush=True)

    asyncio.run(_main())
    return 0


class ServerThread(ThreadedServer):
    """A :class:`DecompositionServer` on a background thread (tests, examples).

    ::

        with ServerThread(ServerConfig(port=0)) as (host, port):
            client = ServiceClient(host, port)
            ...

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        pre_dispatch_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        super().__init__(DecompositionServer(config, pre_dispatch_hook=pre_dispatch_hook))
