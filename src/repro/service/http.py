"""Minimal HTTP/1.1 request/response handling over ``asyncio`` streams.

The service deliberately avoids web frameworks (the container bakes in the
python toolchain only), and ``http.server`` is thread-per-request — the
wrong shape for an asyncio front end.  What a JSON RPC-style API actually
needs from HTTP is small: parse a request line + headers + sized body, write
a status + JSON body back, enforce limits.  This module is exactly that and
nothing more: no chunked encoding, no TLS.

Connections are persistent by default (HTTP/1.1 keep-alive semantics):
:func:`wants_keep_alive` implements the standard negotiation and
:func:`write_response` advertises the decision in the ``Connection`` header.
The connection *loop* — serving many requests per connection — lives in
:mod:`repro.service.base`; keep-alive is what makes the cluster
coordinator's per-component fan-out cheap (one TCP handshake per node, not
per component) and shaves a round-trip off every repeat client.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple

#: Hard cap on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024

#: Default cap on request bodies (layouts can be large; GDS is base64'd).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: HTTP header carrying a request's trace id in both directions.  The header
#: channel survives every wire downgrade (binary→JSON components, v2→v1
#: frames): peers that predate tracing simply ignore it and echo nothing.
TRACE_HEADER = "X-Repro-Trace-Id"

#: HTTP header naming the calling client/tenant for usage metering.  Purely
#: self-declared (no auth layer yet): the value is sanitised into journal
#: lifecycle events so ``repro-decompose usage`` can roll up per-client
#: accounting; absent or unusable values meter under ``anonymous``.
CLIENT_HEADER = "X-Repro-Client"

#: Cap + charset guard for :func:`client_identity` (label-safe, journal-safe).
_CLIENT_ID_MAX = 64


def client_identity(value: Optional[str]) -> str:
    """Sanitise a self-declared client id into a metering-safe token.

    Keeps ``[A-Za-z0-9._-]`` up to 64 chars; anything else (or nothing)
    meters as ``anonymous`` rather than letting arbitrary header bytes into
    journal events and metric labels.
    """
    if not value:
        return "anonymous"
    token = value.strip()[:_CLIENT_ID_MAX]
    allowed = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
    if not token or any(ch not in allowed for ch in token):
        return "anonymous"
    return token

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or oversized request, carrying the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def json(self):
        """Decode the body as JSON (``HttpError`` 400 on failure)."""
        if not self.body:
            raise HttpError(400, "request body is empty; expected JSON")
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc

    def media_type(self) -> str:
        """The body's media type, lowercased, without parameters.

        How endpoints accepting more than one representation negotiate —
        e.g. ``POST /components`` picks its decoder by comparing this
        against the binary frame's content type (an empty string, like any
        unrecognised type, selects the JSON default).
        """
        return self.headers.get("content-type", "").split(";", 1)[0].strip().lower()


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Parse one request from ``reader``; ``None`` on a clean EOF before data."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated HTTP request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(413, "request headers too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request headers too large")

    try:
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        method, path, version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed HTTP request line") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(400, "chunked request bodies are not supported")

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length {length_text!r}") from exc
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length > max_body_bytes:
            raise HttpError(413, f"request body exceeds {max_body_bytes} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise HttpError(400, "request body shorter than Content-Length") from exc
    return HttpRequest(
        method=method.upper(), path=path, headers=headers, body=body, version=version
    )


def wants_keep_alive(request: HttpRequest) -> bool:
    """Standard HTTP persistence negotiation for one request.

    HTTP/1.1 connections persist unless the client says ``Connection: close``;
    HTTP/1.0 connections close unless the client says ``keep-alive``.
    """
    connection = request.headers.get("connection", "").lower()
    if "close" in connection:
        return False
    if request.version == "HTTP/1.0":
        return "keep-alive" in connection
    return True


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    close: bool = True,
) -> None:
    """Write one complete response and flush.

    ``close`` selects the ``Connection`` header; with ``close=False`` the
    caller is expected to keep reading requests from the same connection.
    An explicit ``Content-Type`` in ``extra_headers`` overrides the default
    (used by the plain-text ``/metrics`` endpoint).
    """
    reason = _REASONS.get(status, "Unknown")
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close" if close else "keep-alive",
    }
    headers.update(extra_headers or {})
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


@dataclass
class StreamResponse:
    """A response whose body is produced incrementally (e.g. SSE).

    Returned by a dispatch handler instead of ``(status, body, headers)``.
    The connection loop writes the head (no ``Content-Length``; the body is
    delimited by connection close), then awaits ``run(writer)`` which owns
    the writer until the stream ends.
    """

    status: int
    content_type: str
    run: Callable[[asyncio.StreamWriter], Awaitable[None]]
    extra_headers: Optional[Dict[str, str]] = None


async def write_stream_head(
    writer: asyncio.StreamWriter,
    status: int,
    content_type: str,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Write the response head for a close-delimited streaming body."""
    reason = _REASONS.get(status, "Unknown")
    headers = {
        "Content-Type": content_type,
        "Cache-Control": "no-cache",
        "Connection": "close",
    }
    headers.update(extra_headers or {})
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()


def json_body(payload) -> bytes:
    """Encode a response payload (sorted keys: deterministic on the wire)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def error_body(status: int, message: str, **extra) -> Tuple[int, bytes]:
    """Standard error envelope: ``{"error": {"status":..., "message":...}}``."""
    return status, json_body({"error": {"status": status, "message": message, **extra}})
