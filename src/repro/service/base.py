"""Shared asyncio HTTP server chassis for the serving subsystems.

:class:`BaseHttpServer` owns everything about running a JSON-over-HTTP
daemon that is *not* specific to what the daemon computes: the accept loop,
the per-connection keep-alive request loop, idle-connection timeouts,
request counters, signal handling and the graceful-drain protocol.  Two
front ends ride on it:

* :class:`repro.service.server.DecompositionServer` — the single-node
  decomposition service over a persistent worker pool;
* :class:`repro.cluster.coordinator.ClusterCoordinator` — the multi-node
  front end that fans components out across cache-owning nodes.

Subclasses implement :meth:`_dispatch` (route one request) plus the
``_on_start`` / ``_on_bind_failed`` / ``_on_shutdown`` lifecycle hooks for
whatever backend they own (worker pool, node membership, ...).  Endpoints
that execute *jobs* share :meth:`_execute_jobs` — admission control
(oversized-batch 400, queue-full/draining 503 + Retry-After), in-flight
slot accounting released per job from done-callbacks (a 504'd request
abandons jobs that keep running), the request timeout, and error mapping
through the :meth:`_submit_jobs` / :meth:`_map_job_error` hooks — so the
single-node server and the coordinator can never drift on the overload
contract.

Connection handling
-------------------

Connections are persistent (HTTP keep-alive): one task serves requests in a
loop until the peer closes, asks for ``Connection: close``, idles past
``header_timeout``, or the server starts draining.  While a connection is
*between* requests its writer sits in ``_idle_writers``; a drain closes
those immediately, so idle keep-alive peers can never stall shutdown — only
genuinely in-flight requests are awaited.

:class:`ThreadedServer` runs any :class:`BaseHttpServer` on a background
thread with a context-manager lifecycle; it is the harness used by the
tests, the examples and the in-process cluster benchmarks.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.service.http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpError,
    HttpRequest,
    MAX_HEADER_BYTES,
    StreamResponse,
    error_body,
    json_body,
    read_request,
    wants_keep_alive,
    write_response,
    write_stream_head,
)

#: One request's terminal error response: (status, body, extra headers).
ErrorResponse = Tuple[int, bytes, Optional[Dict[str, str]]]


class BaseHttpServer:
    """Asyncio HTTP daemon skeleton: lifecycle, connection loop, job control."""

    #: How admission-control error messages name this daemon.
    queue_noun = "server"

    def __init__(
        self,
        host: str,
        port: int,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        header_timeout: float = 30.0,
        queue_limit: int = 32,
        request_timeout: float = 300.0,
        retry_after_seconds: int = 1,
    ) -> None:
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.header_timeout = header_timeout
        self.queue_limit = queue_limit
        self.request_timeout = request_timeout
        self.retry_after_seconds = retry_after_seconds
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._idle_writers: set = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        #: Set by :meth:`shutdown` *before* in-flight connections are
        #: awaited, so long-lived streams (``GET /watch``) can end promptly
        #: instead of deadlocking the drain.
        self._drain_started: Optional[asyncio.Event] = None
        #: Optional :class:`repro.obs.observer.Observer` attached by the
        #: subclass before :meth:`start`; ``None`` = no observability.
        self.obs = None
        self._started_at = 0.0
        self._inflight = 0
        self._counters = {
            "received": 0,
            "served": 0,
            "rejected": 0,
            "failed": 0,
            "timeouts": 0,
            "invalid": 0,
        }

    # -------------------------------------------------------- subclass hooks
    async def _on_start(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bring up the backend before the socket binds (may raise)."""

    async def _on_bind_failed(self, loop: asyncio.AbstractEventLoop) -> None:
        """Release backend resources when the socket bind itself failed."""

    async def _on_shutdown(self, loop: asyncio.AbstractEventLoop) -> None:
        """Tear down the backend after every connection has drained."""

    async def _dispatch(
        self, request: HttpRequest
    ) -> Tuple[int, bytes, Optional[Dict[str, str]]]:
        """Route one request; return (status, body, extra headers)."""
        raise NotImplementedError

    async def _submit_jobs(
        self, loop: asyncio.AbstractEventLoop, jobs: List[Dict], release_slot
    ):
        """Hand admitted jobs to the backend.

        Returns ``(futures, first submit error)``; every returned future
        must carry ``release_slot`` as a done-callback (it owns that job's
        in-flight slot from then on).
        """
        raise NotImplementedError

    def _map_job_error(self, exc: BaseException) -> ErrorResponse:
        """Map a job failure onto a terminal error response (and counters)."""
        raise NotImplementedError

    def _timeout_message(self) -> str:
        return f"request exceeded {self.request_timeout}s"

    # ---------------------------------------------------------- job control
    async def _execute_jobs(
        self,
        jobs: List[Dict],
        units: Optional[int] = None,
        collect_errors: bool = False,
    ) -> Tuple[Optional[List], Optional[ErrorResponse]]:
        """Admission control + backend execution of parsed job dicts.

        Returns ``(results, None)`` on success or ``(None, error response)``
        when the request was shed, timed out or failed — the single place
        where queue limits, in-flight slot accounting and the overload
        contract live, shared by every job endpoint of every subclass.

        ``units`` is how many admission slots the request occupies (default:
        one per job).  A component micro-batch passes ``units=1`` — it is one
        node round trip whose internal ordering the pool's priority queue
        owns, so admission control sheds *requests*, not components.  With
        ``collect_errors`` a failing job becomes its exception in the results
        list instead of failing the whole request (per-component granularity
        for batch endpoints).
        """
        loop = asyncio.get_running_loop()
        units = len(jobs) if units is None else max(1, min(units, len(jobs)))
        if units > self.queue_limit:
            # Would never fit, even on an idle server: a permanent-client
            # error, not transient overload — 503 + Retry-After would send
            # the client into an infinite retry loop.
            self._counters["invalid"] += 1
            status, body = error_body(
                400,
                f"batch of {len(jobs)} layouts exceeds the {self.queue_noun}'s "
                f"queue capacity of {self.queue_limit}; split the batch",
            )
            return None, (status, body, None)
        if self._draining or self._inflight + units > self.queue_limit:
            self._counters["rejected"] += 1
            reason = (
                f"{self.queue_noun} is draining" if self._draining else "queue is full"
            )
            status, body = error_body(
                503, f"{reason}; retry later", retry_after=self.retry_after_seconds
            )
            return None, (status, body, {"Retry-After": str(self.retry_after_seconds)})

        # Slots are held from admission until the jobs leave the backend —
        # on the happy path that is when gather() resolves, but a 504'd
        # request abandons jobs that keep running, so slots are released
        # from job done-callbacks instead of this coroutine.  With
        # units < len(jobs) the last `units` completions each free one slot,
        # so the accounting stays exact for micro-batches too.
        self._inflight += units
        state = {"remaining": len(jobs)}

        def _finish_one() -> None:
            if state["remaining"] <= units:
                self._inflight -= 1
            state["remaining"] -= 1

        def _release_slot(_future=None) -> None:
            try:
                loop.call_soon_threadsafe(_finish_one)
            except RuntimeError:  # loop already closed (late drain)
                _finish_one()

        unsubmitted = len(jobs)
        try:
            futures, submit_error = await self._submit_jobs(loop, jobs, _release_slot)
            unsubmitted = len(jobs) - len(futures)
            if submit_error is not None:
                raise submit_error
            try:
                results = await asyncio.wait_for(
                    asyncio.gather(
                        *[asyncio.wrap_future(f) for f in futures],
                        return_exceptions=collect_errors,
                    ),
                    timeout=self.request_timeout,
                )
            except asyncio.TimeoutError:
                self._counters["timeouts"] += 1
                return None, (*error_body(504, self._timeout_message()), None)
        except Exception as exc:
            return None, self._map_job_error(exc)
        finally:
            # Only the never-submitted jobs' slots; the rest are released by
            # their done-callbacks when the backend really finishes them.
            for _ in range(unsubmitted):
                _finish_one()
        return list(results), None

    # -------------------------------------------------- observability routes
    async def _dispatch_observability(self, request: HttpRequest):
        """Serve the shared journal-backed routes; ``None`` when unmatched.

        ``GET /trace/<id>`` returns the assembled span tree of one journaled
        request; ``GET /watch`` upgrades to a live SSE stream.  Both answer
        404 with an enablement hint when the server runs without a journal.
        Subclasses call this from ``_dispatch`` before their 404 fallthrough.
        """
        if request.method != "GET":
            return None
        is_trace = request.path.startswith("/trace/")
        is_watch = request.path == "/watch"
        if not is_trace and not is_watch:
            return None
        obs = self.obs
        if obs is None or not obs.enabled:
            from repro.obs.observer import journal_hint_body

            return 404, journal_hint_body(), None
        if is_trace:
            trace_id = request.path[len("/trace/") :]
            # Journal reads hit disk: keep them off the event loop.
            payload = await asyncio.get_running_loop().run_in_executor(
                None, obs.trace_payload, trace_id
            )
            if payload is None:
                status, body = error_body(404, f"no journaled events for trace {trace_id!r}")
                return status, body, None
            return 200, json_body(payload), None
        return StreamResponse(
            status=200,
            content_type="text/event-stream",
            run=obs.watch_runner(self),
        )

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> Tuple[str, int]:
        """Start the backend and the accept loop; return the bound (host, port)."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._drain_started = asyncio.Event()
        if self.obs is not None:
            self.obs.open(loop)
        await self._on_start(loop)
        try:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=MAX_HEADER_BYTES,
            )
        except Exception:
            # e.g. EADDRINUSE: don't leak whatever _on_start brought up.
            await self._on_bind_failed(loop)
            raise
        self._started_at = time.monotonic()
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def shutdown(self) -> None:
        """Drain: stop accepting, finish in-flight work, stop the backend."""
        if self._draining:
            return
        self._draining = True
        # Wake long-lived streams *before* awaiting connections: a /watch
        # subscriber is an in-flight connection that only ends once it
        # notices the drain.
        if self._drain_started is not None:
            self._drain_started.set()
        if self.obs is not None and self.obs.hub is not None:
            self.obs.hub.wake_all()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections are waiting for a request that will
        # never be served: close them now so only in-flight work is awaited.
        for writer in list(self._idle_writers):
            writer.close()
        # wait_closed() does not wait for handler coroutines (3.11): drain
        # the connections we track ourselves, then the backend.
        if self._connections:
            await asyncio.gather(*list(self._connections), return_exceptions=True)
        await self._on_shutdown(asyncio.get_running_loop())
        if self.obs is not None:
            self.obs.close()
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until a drain (signal- or call-initiated) completes."""
        assert self._stopped is not None, "server was never started"
        await self._stopped.wait()

    def uptime_seconds(self) -> float:
        return round(time.monotonic() - self._started_at, 3)

    # -------------------------------------------------------------- requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                if self._draining:
                    return
                self._idle_writers.add(writer)
                try:
                    request = await asyncio.wait_for(
                        read_request(reader, self.max_body_bytes),
                        timeout=self.header_timeout,
                    )
                except asyncio.TimeoutError:
                    # Idle or trickling peer: close it.  Also what bounds a
                    # drain for connections that slipped past the idle-writer
                    # close — they finish within the timeout.
                    return
                except HttpError as exc:
                    self._counters["invalid"] += 1
                    status, body = error_body(exc.status, exc.message)
                    await write_response(writer, status, body, close=True)
                    return
                finally:
                    self._idle_writers.discard(writer)
                if request is None:
                    return
                self._counters["received"] += 1
                try:
                    result = await self._dispatch(request)
                    if isinstance(result, StreamResponse):
                        await write_stream_head(
                            writer,
                            result.status,
                            result.content_type,
                            result.extra_headers,
                        )
                        await result.run(writer)
                        return
                    status, body, extra = result
                except HttpError as exc:
                    self._counters["invalid"] += 1
                    status, body = error_body(exc.status, exc.message)
                    extra = None
                except Exception as exc:  # defensive: a handler bug must not kill the loop
                    self._counters["failed"] += 1
                    status, body = error_body(500, f"internal error: {exc}")
                    extra = None
                keep_alive = wants_keep_alive(request) and not self._draining
                await write_response(
                    writer, status, body, extra_headers=extra, close=not keep_alive
                )
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            self._idle_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ThreadedServer:
    """Any :class:`BaseHttpServer` on a background thread (tests, examples).

    ::

        with ThreadedServer(server) as (host, port):
            ...

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, server: BaseHttpServer) -> None:
        self.server = server
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 30.0) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        async def _main() -> None:
            try:
                self.address = await self.server.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.server.wait_stopped()

        asyncio.run(_main())

    def stop(self, timeout: float = 60.0) -> None:
        """Drain and join; idempotent."""
        if self._thread is None or not self._thread.is_alive():
            return
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(self.server.shutdown(), self._loop)
        self._thread.join(timeout)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
