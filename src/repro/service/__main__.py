"""``python -m repro.service`` — the ``repro-serve`` daemon entry point.

Delegates to the ``serve`` subcommand of the main CLI so the two surfaces
(``repro-decompose serve ...`` and ``python -m repro.service ...``) accept
identical flags and never drift apart.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
