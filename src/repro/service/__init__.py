"""Decomposition-as-a-service: async HTTP server, worker pool, client.

This package turns the batch engine of :mod:`repro.runtime` into a
long-running serving system — the ROADMAP's "async batch API for serving"
and "persistent worker pool daemon" items:

* :mod:`repro.service.protocol` — the JSON request/response schema shared by
  server and client (layouts inline as JSON or base64 GDSII);
* :mod:`repro.service.http` — a minimal HTTP/1.1 layer over ``asyncio``
  streams (stdlib only, no web framework);
* :mod:`repro.service.pool` — the persistent worker pool: processes created
  once at startup, each owning a :class:`~repro.core.decomposer.Decomposer`
  and a component cache (optionally the shared SQLite store);
* :mod:`repro.service.server` — :class:`DecompositionServer`, the asyncio
  front end with admission control, per-request timeouts, ``/healthz`` and
  ``/stats``, and graceful drain on SIGTERM;
* :mod:`repro.service.client` — a small blocking client used by the tests,
  the examples and scripted callers.

Every served result is bit-identical to a direct
:meth:`Decomposer.decompose` call: the server only changes *where* the solve
runs, never what it computes.

Run it with ``repro-decompose serve`` or ``python -m repro.service``.
"""

from repro.service.base import BaseHttpServer, ThreadedServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.protocol import ProtocolError
from repro.service.server import DecompositionServer, ServerConfig, ServerThread, run_server

__all__ = [
    "BaseHttpServer",
    "DecompositionServer",
    "PoolConfig",
    "ProtocolError",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ThreadedServer",
    "WorkerPool",
    "run_server",
]
