"""Prometheus text exposition of the serving counters and histograms.

``GET /metrics`` on the decomposition server and on the cluster coordinator
renders the same numbers ``GET /stats`` reports as JSON, in the Prometheus
text format (version 0.0.4) so a stock Prometheus/VictoriaMetrics scraper
can watch a farm without a custom exporter.  Counters and gauges come from
the stats snapshots; histogram families (``repro_stage_duration_seconds``
and friends) are fed live by :mod:`repro.obs` span instrumentation and
rendered with standard ``_bucket``/``_sum``/``_count`` semantics.

:func:`render_metrics` is the shared formatter; :func:`server_metrics_text`
maps a :meth:`DecompositionServer._stats` snapshot onto metric families (the
coordinator has its own mapping in :mod:`repro.cluster.coordinator`).
:func:`lint_metrics_text` is a minimal exposition-format parser used by the
test suite to keep every payload well-formed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.hist import HistogramSnapshot, format_float

#: Content type of the text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Number = Union[int, float]
#: One sample: (label dict, value).
Sample = Tuple[Mapping[str, str], Number]
#: One family: (name, type, help, samples).  For ``histogram`` families the
#: sample values are :class:`HistogramSnapshot` objects instead of numbers.
MetricFamily = Tuple[str, str, str, Sequence]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format_float(value)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
    )
    return "{" + rendered + "}"


def render_metrics(families: Iterable[MetricFamily]) -> str:
    """Render metric families to the Prometheus text format."""
    lines: List[str] = []
    for name, mtype, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        if mtype == "histogram":
            for labels, snap in samples:
                base = dict(labels)
                for le, cumulative in snap.cumulative():
                    bucket_labels = dict(base)
                    bucket_labels["le"] = (
                        "+Inf" if math.isinf(le) else format_float(le)
                    )
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(base)} {format_float(snap.total_sum)}"
                )
                lines.append(f"{name}_count{_render_labels(base)} {snap.total_count}")
        else:
            for labels, value in samples:
                lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def counter_family(
    name: str, help_text: str, samples: Sequence[Sample]
) -> MetricFamily:
    return (name, "counter", help_text, samples)


def gauge_family(name: str, help_text: str, samples: Sequence[Sample]) -> MetricFamily:
    return (name, "gauge", help_text, samples)


def histogram_family(
    name: str,
    help_text: str,
    samples: Sequence[Tuple[Mapping[str, str], HistogramSnapshot]],
) -> MetricFamily:
    return (name, "histogram", help_text, samples)


def build_info_family(role: str, extra: Optional[Mapping[str, str]] = None) -> MetricFamily:
    """``repro_build_info``: constant-1 gauge whose labels identify the build.

    Carries the package version, every wire/cache schema version, and the
    active solve-kernel mode so a fleet dashboard can spot mixed-version
    clusters (the sticky JSON/frame downgrades then explain themselves).
    """
    import repro
    from repro.core.kernels import kernel_mode
    from repro.graph import FLAT_FRAME_VERSION
    from repro.runtime.component_io import GRAPH_WIRE_VERSION
    from repro.runtime.hashing import _SCHEMA_VERSION as HASH_SCHEMA_VERSION
    from repro.runtime.sqlite_cache import SCHEMA_VERSION as CACHE_SCHEMA_VERSION
    from repro.runtime.wire_binary import FRAME_VERSION

    labels = {
        "version": repro.__version__,
        "role": role,
        "hash_schema": str(HASH_SCHEMA_VERSION),
        "cache_schema": str(CACHE_SCHEMA_VERSION),
        "graph_wire": str(GRAPH_WIRE_VERSION),
        "components_frame": str(FRAME_VERSION),
        "flat_frame": str(FLAT_FRAME_VERSION),
        "solve_kernels": kernel_mode(),
    }
    labels.update(extra or {})
    return gauge_family(
        "repro_build_info",
        "Build/version identity of this process (value is always 1).",
        [(labels, 1)],
    )


def observability_families(obs) -> List[MetricFamily]:
    """Metric families fed by :mod:`repro.obs` instrumentation.

    Shared by the server's and the coordinator's ``/metrics``: the span
    stage histograms, the runtime-layer latency histograms (component-cache
    lookups, shared-memory transfers — process-wide, serving-process view),
    and, when the journal is enabled, journal/watch telemetry.
    """
    from repro.runtime import shm_transport
    from repro.runtime.cache import lookup_histogram

    families: List[MetricFamily] = [
        histogram_family(
            "repro_stage_duration_seconds",
            "Per-stage request latency (seconds), fed by trace spans.",
            [({"stage": stage}, snap) for stage, snap in obs.stages.snapshot()],
        ),
        histogram_family(
            "repro_cache_lookup_seconds",
            "Component-cache lookup latency (serving process only; pool "
            "worker processes keep their own).",
            [({}, lookup_histogram().snapshot())],
        ),
        histogram_family(
            "repro_shm_transfer_seconds",
            "Shared-memory segment write/read latency (serving process "
            "only).",
            [
                ({"op": "write"}, shm_transport.WRITE_HISTOGRAM.snapshot()),
                ({"op": "read"}, shm_transport.READ_HISTOGRAM.snapshot()),
            ],
        ),
    ]
    if obs.journal is not None:
        journal_stats = obs.journal.stats()
        families.append(
            counter_family(
                "repro_journal_events_total",
                "Lifecycle events appended to the journal this process "
                "lifetime.",
                [({}, journal_stats["appended"])],
            )
        )
        families.append(
            counter_family(
                "repro_journal_recovered_bytes_total",
                "Torn-tail bytes truncated during journal open-time "
                "recovery.",
                [({}, journal_stats["recovered_bytes"])],
            )
        )
    if obs.hub is not None:
        families.append(
            gauge_family(
                "repro_watch_subscribers",
                "Live GET /watch subscribers.",
                [({}, obs.hub.subscriber_count)],
            )
        )
        families.append(
            counter_family(
                "repro_watch_dropped_events_total",
                "Events dropped across slow GET /watch subscribers "
                "(drop-oldest policy).",
                [({}, obs.hub.dropped)],
            )
        )
    return families


def server_metrics_text(
    stats: Dict, extra_families: Optional[Sequence[MetricFamily]] = None
) -> str:
    """Render a ``DecompositionServer._stats`` snapshot as Prometheus text."""
    server: Dict = stats.get("server", {})
    pool: Dict = stats.get("pool", {})
    cache: Dict = stats.get("cache", {})
    families: List[MetricFamily] = [
        counter_family(
            "repro_server_requests_total",
            "HTTP requests by terminal result.",
            [
                ({"result": result}, server.get(result, 0))
                for result in ("received", "served", "rejected", "failed", "timeouts", "invalid")
            ],
        ),
        counter_family(
            "repro_server_components_total",
            "Component requests served via POST /component.",
            [({}, server.get("components", 0))],
        ),
        counter_family(
            "repro_server_component_cache_hits_total",
            "Component requests answered from the component cache "
            "(cache-affinity hits when routed by a cluster coordinator).",
            [({}, server.get("component_cache_hits", 0))],
        ),
        counter_family(
            "repro_server_component_batches_total",
            "Component micro-batch requests served via POST /components.",
            [({}, server.get("component_batches", 0))],
        ),
        counter_family(
            "repro_server_batched_components_total",
            "Components received inside POST /components micro-batches "
            "(divide by repro_server_component_batches_total for the mean "
            "batch size).",
            [({}, server.get("batched_components", 0))],
        ),
        gauge_family(
            "repro_server_inflight_jobs",
            "Jobs admitted and not yet finished (queue depth).",
            [({}, server.get("inflight", 0))],
        ),
        gauge_family(
            "repro_server_queue_limit",
            "Admission-control bound on queued + in-flight jobs.",
            [({}, server.get("queue_limit", 0))],
        ),
        gauge_family(
            "repro_server_uptime_seconds",
            "Seconds since the server started.",
            [({}, server.get("uptime_seconds", 0.0))],
        ),
        counter_family(
            "repro_pool_jobs_total",
            "Worker-pool jobs by state.",
            [
                ({"state": state}, pool.get(state, 0))
                for state in ("submitted", "completed", "failed")
            ],
        ),
        gauge_family(
            "repro_pool_workers",
            "Size of the worker pool.",
            [({"mode": str(pool.get("mode", "unknown"))}, pool.get("workers", 0))],
        ),
        gauge_family(
            "repro_pool_queue_depth",
            "Jobs admitted but not yet dispatched to a worker, by priority "
            "class.",
            [
                ({"class": klass}, depth)
                for klass, depth in sorted(
                    (pool.get("queue_depth") or {}).items()
                )
            ],
        ),
        gauge_family(
            "repro_pool_active_jobs",
            "Jobs currently executing on a worker.",
            [({}, pool.get("active", 0))],
        ),
        counter_family(
            "repro_pool_priority_bumps_total",
            "Queued jobs dispatched by the age-based anti-starvation bump "
            "instead of smallest-cost order.",
            [({}, pool.get("priority_bumps", 0))],
        ),
    ]
    if cache.get("backend") == "sqlite":
        families.append(
            counter_family(
                "repro_cache_operations_total",
                "Persistent component-cache operations (cumulative across restarts).",
                [
                    ({"operation": op}, cache.get(op, 0))
                    for op in ("hits", "misses", "stores", "evictions")
                ],
            )
        )
        families.append(
            gauge_family(
                "repro_cache_entries",
                "Components currently stored in the persistent cache.",
                [({}, cache.get("entries", 0))],
            )
        )
    if extra_families:
        families.extend(extra_families)
    return render_metrics(families)


def lint_metrics_text(text: str) -> List[str]:
    """Parse Prometheus text exposition; return a list of format problems.

    Checks the invariants a scraper relies on: every sample preceded by a
    matching HELP+TYPE pair, parseable label syntax with proper escaping,
    parseable values, histogram ``le`` bucket monotonicity (cumulative
    counts non-decreasing, final bucket ``+Inf`` equal to ``_count``).
    """
    problems: List[str] = []
    declared: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    histograms: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    hist_counts: Dict[str, Dict[str, float]] = {}

    def base_name(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                trimmed = sample_name[: -len(suffix)]
                if declared.get(trimmed) == "histogram":
                    return trimmed
        return sample_name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                problems.append(f"line {lineno}: HELP without text")
            else:
                helped[parts[2]] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: bad TYPE line {line!r}")
                continue
            name = parts[2]
            if name in declared:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if not helped.get(name):
                problems.append(f"line {lineno}: TYPE {name} without preceding HELP")
            declared[name] = parts[3]
            continue
        if line.startswith("#"):
            continue
        # Sample line: name[{labels}] value
        brace = line.find("{")
        labels: Dict[str, str] = {}
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                problems.append(f"line {lineno}: unbalanced braces")
                continue
            name = line[:brace]
            label_blob = line[brace + 1 : close]
            rest = line[close + 1 :].strip()
            i = 0
            while i < len(label_blob):
                eq = label_blob.find("=", i)
                if eq < 0 or eq + 1 >= len(label_blob) or label_blob[eq + 1] != '"':
                    problems.append(f"line {lineno}: malformed label pair")
                    break
                key = label_blob[i:eq].strip().lstrip(",").strip()
                j = eq + 2
                value_chars: List[str] = []
                ok = False
                while j < len(label_blob):
                    ch = label_blob[j]
                    if ch == "\\":
                        if j + 1 >= len(label_blob) or label_blob[j + 1] not in ('"', "\\", "n"):
                            break
                        value_chars.append(
                            {"n": "\n", '"': '"', "\\": "\\"}[label_blob[j + 1]]
                        )
                        j += 2
                        continue
                    if ch == '"':
                        ok = True
                        j += 1
                        break
                    if ch == "\n":
                        break
                    value_chars.append(ch)
                    j += 1
                if not ok:
                    problems.append(f"line {lineno}: unterminated label value")
                    break
                labels[key] = "".join(value_chars)
                i = j
                if i < len(label_blob) and label_blob[i] == ",":
                    i += 1
        else:
            name, _, rest = line.partition(" ")
            rest = rest.strip()
        value_text = rest.split(" ", 1)[0] if rest else ""
        try:
            if value_text in ("+Inf", "-Inf"):
                value = math.inf if value_text == "+Inf" else -math.inf
            elif value_text == "NaN":
                value = math.nan
            else:
                value = float(value_text)
        except ValueError:
            problems.append(f"line {lineno}: unparseable value {value_text!r}")
            continue
        family = base_name(name)
        if family not in declared:
            problems.append(f"line {lineno}: sample {name} without TYPE declaration")
            continue
        if declared[family] == "histogram" and name.endswith("_bucket"):
            le_text = labels.get("le")
            if le_text is None:
                problems.append(f"line {lineno}: histogram bucket without le label")
                continue
            le = math.inf if le_text == "+Inf" else float(le_text)
            series = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            histograms.setdefault(family, {}).setdefault(series, []).append((le, value))
        if declared[family] == "histogram" and name.endswith("_count"):
            series = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            hist_counts.setdefault(family, {})[series] = value

    for family, series_map in histograms.items():
        for series, buckets in series_map.items():
            ordered = sorted(buckets, key=lambda pair: pair[0])
            last = -math.inf
            for le, cumulative in ordered:
                if cumulative < last:
                    problems.append(
                        f"{family}{{{series}}}: bucket counts decrease at le={le}"
                    )
                last = cumulative
            if not ordered or not math.isinf(ordered[-1][0]):
                problems.append(f"{family}{{{series}}}: missing +Inf bucket")
            else:
                count = hist_counts.get(family, {}).get(series)
                if count is not None and count != ordered[-1][1]:
                    problems.append(
                        f"{family}{{{series}}}: +Inf bucket != _count"
                    )
    return problems
