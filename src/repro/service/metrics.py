"""Prometheus text exposition of the serving counters and histograms.

``GET /metrics`` on the decomposition server and on the cluster coordinator
renders the same numbers ``GET /stats`` reports as JSON, in the Prometheus
text format (version 0.0.4) so a stock Prometheus/VictoriaMetrics scraper
can watch a farm without a custom exporter.  Counters and gauges come from
the stats snapshots; histogram families (``repro_stage_duration_seconds``
and friends) are fed live by :mod:`repro.obs` span instrumentation and
rendered with standard ``_bucket``/``_sum``/``_count`` semantics.

:func:`render_metrics` is the shared formatter; :func:`server_metrics_text`
maps a :meth:`DecompositionServer._stats` snapshot onto metric families (the
coordinator has its own mapping in :mod:`repro.cluster.coordinator`).
:func:`lint_metrics_text` is a minimal exposition-format parser used by the
test suite to keep every payload well-formed.
"""

from __future__ import annotations

import math
import os
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs.hist import HistogramSnapshot, format_float

#: Content type of the text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Process birth for repro_process_uptime_seconds.  This module is imported
# while the serving process boots, so import time is the start time for the
# purposes of a per-node uptime gauge.
_PROCESS_START = time.monotonic()

Number = Union[int, float]
#: One sample: (label dict, value).
Sample = Tuple[Mapping[str, str], Number]
#: One family: (name, type, help, samples).  For ``histogram`` families the
#: sample values are :class:`HistogramSnapshot` objects instead of numbers.
MetricFamily = Tuple[str, str, str, Sequence]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format_float(value)


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
    )
    return "{" + rendered + "}"


def render_metrics(families: Iterable[MetricFamily]) -> str:
    """Render metric families to the Prometheus text format."""
    lines: List[str] = []
    for name, mtype, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        if mtype == "histogram":
            for labels, snap in samples:
                base = dict(labels)
                for le, cumulative in snap.cumulative():
                    bucket_labels = dict(base)
                    bucket_labels["le"] = (
                        "+Inf" if math.isinf(le) else format_float(le)
                    )
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(base)} {format_float(snap.total_sum)}"
                )
                lines.append(f"{name}_count{_render_labels(base)} {snap.total_count}")
        else:
            for labels, value in samples:
                lines.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def counter_family(
    name: str, help_text: str, samples: Sequence[Sample]
) -> MetricFamily:
    return (name, "counter", help_text, samples)


def gauge_family(name: str, help_text: str, samples: Sequence[Sample]) -> MetricFamily:
    return (name, "gauge", help_text, samples)


def histogram_family(
    name: str,
    help_text: str,
    samples: Sequence[Tuple[Mapping[str, str], HistogramSnapshot]],
) -> MetricFamily:
    return (name, "histogram", help_text, samples)


def build_info_family(role: str, extra: Optional[Mapping[str, str]] = None) -> MetricFamily:
    """``repro_build_info``: constant-1 gauge whose labels identify the build.

    Carries the package version, every wire/cache schema version, and the
    active solve-kernel mode so a fleet dashboard can spot mixed-version
    clusters (the sticky JSON/frame downgrades then explain themselves).
    """
    import repro
    from repro.core.kernels import kernel_mode
    from repro.graph import FLAT_FRAME_VERSION
    from repro.runtime.component_io import GRAPH_WIRE_VERSION
    from repro.runtime.hashing import _SCHEMA_VERSION as HASH_SCHEMA_VERSION
    from repro.runtime.sqlite_cache import SCHEMA_VERSION as CACHE_SCHEMA_VERSION
    from repro.runtime.wire_binary import FRAME_VERSION

    labels = {
        "version": repro.__version__,
        "role": role,
        "hash_schema": str(HASH_SCHEMA_VERSION),
        "cache_schema": str(CACHE_SCHEMA_VERSION),
        "graph_wire": str(GRAPH_WIRE_VERSION),
        "components_frame": str(FRAME_VERSION),
        "flat_frame": str(FLAT_FRAME_VERSION),
        "solve_kernels": kernel_mode(),
    }
    labels.update(extra or {})
    return gauge_family(
        "repro_build_info",
        "Build/version identity of this process (value is always 1).",
        [(labels, 1)],
    )


def process_rss_bytes() -> Optional[int]:
    """Resident set size from ``/proc/self/statm``; ``None`` off-Linux."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        pages = int(fields[1])
        page_size = os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return None
    return pages * page_size


def process_open_fds() -> Optional[int]:
    """Open file descriptors from ``/proc/self/fd``; ``None`` off-Linux."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def process_telemetry_families() -> List[MetricFamily]:
    """Per-process self-telemetry gauges every ``/metrics`` exposes.

    Federation turns these into an instant per-node fleet view: a node
    with runaway RSS or a descriptor leak stands out in ``/cluster/metrics``
    without shell access to the box.  The procfs-backed gauges are simply
    omitted on platforms without ``/proc`` rather than reporting garbage.
    """
    families = [
        gauge_family(
            "repro_process_uptime_seconds",
            "Seconds since this serving process imported the metrics layer.",
            [({}, time.monotonic() - _PROCESS_START)],
        )
    ]
    rss = process_rss_bytes()
    if rss is not None:
        families.append(
            gauge_family(
                "repro_process_rss_bytes",
                "Resident set size of this process (from /proc/self/statm).",
                [({}, rss)],
            )
        )
    fds = process_open_fds()
    if fds is not None:
        families.append(
            gauge_family(
                "repro_process_open_fds",
                "Open file descriptors of this process (from /proc/self/fd).",
                [({}, fds)],
            )
        )
    return families


def observability_families(obs) -> List[MetricFamily]:
    """Metric families fed by :mod:`repro.obs` instrumentation.

    Shared by the server's and the coordinator's ``/metrics``: the span
    stage histograms, the runtime-layer latency histograms (component-cache
    lookups, shared-memory transfers — process-wide, serving-process view),
    and, when the journal is enabled, journal/watch telemetry.
    """
    from repro.runtime import shm_transport
    from repro.runtime.cache import lookup_histogram

    families: List[MetricFamily] = process_telemetry_families()
    families += [
        histogram_family(
            "repro_stage_duration_seconds",
            "Per-stage request latency (seconds), fed by trace spans.",
            [({"stage": stage}, snap) for stage, snap in obs.stages.snapshot()],
        ),
        histogram_family(
            "repro_cache_lookup_seconds",
            "Component-cache lookup latency (serving process only; pool "
            "worker processes keep their own).",
            [({}, lookup_histogram().snapshot())],
        ),
        histogram_family(
            "repro_shm_transfer_seconds",
            "Shared-memory segment write/read latency (serving process "
            "only).",
            [
                ({"op": "write"}, shm_transport.WRITE_HISTOGRAM.snapshot()),
                ({"op": "read"}, shm_transport.READ_HISTOGRAM.snapshot()),
            ],
        ),
    ]
    if obs.journal is not None:
        journal_stats = obs.journal.stats()
        families.append(
            counter_family(
                "repro_journal_events_total",
                "Lifecycle events appended to the journal this process "
                "lifetime.",
                [({}, journal_stats["appended"])],
            )
        )
        families.append(
            counter_family(
                "repro_journal_recovered_bytes_total",
                "Torn-tail bytes truncated during journal open-time "
                "recovery.",
                [({}, journal_stats["recovered_bytes"])],
            )
        )
    if obs.hub is not None:
        families.append(
            gauge_family(
                "repro_watch_subscribers",
                "Live GET /watch subscribers.",
                [({}, obs.hub.subscriber_count)],
            )
        )
        families.append(
            counter_family(
                "repro_watch_dropped_events_total",
                "Events dropped across slow GET /watch subscribers "
                "(drop-oldest policy).",
                [({}, obs.hub.dropped)],
            )
        )
    return families


def server_metrics_text(
    stats: Dict, extra_families: Optional[Sequence[MetricFamily]] = None
) -> str:
    """Render a ``DecompositionServer._stats`` snapshot as Prometheus text."""
    server: Dict = stats.get("server", {})
    pool: Dict = stats.get("pool", {})
    cache: Dict = stats.get("cache", {})
    families: List[MetricFamily] = [
        counter_family(
            "repro_server_requests_total",
            "HTTP requests by terminal result.",
            [
                ({"result": result}, server.get(result, 0))
                for result in ("received", "served", "rejected", "failed", "timeouts", "invalid")
            ],
        ),
        counter_family(
            "repro_server_components_total",
            "Component requests served via POST /component.",
            [({}, server.get("components", 0))],
        ),
        counter_family(
            "repro_server_component_cache_hits_total",
            "Component requests answered from the component cache "
            "(cache-affinity hits when routed by a cluster coordinator).",
            [({}, server.get("component_cache_hits", 0))],
        ),
        counter_family(
            "repro_server_component_batches_total",
            "Component micro-batch requests served via POST /components.",
            [({}, server.get("component_batches", 0))],
        ),
        counter_family(
            "repro_server_batched_components_total",
            "Components received inside POST /components micro-batches "
            "(divide by repro_server_component_batches_total for the mean "
            "batch size).",
            [({}, server.get("batched_components", 0))],
        ),
        gauge_family(
            "repro_server_inflight_jobs",
            "Jobs admitted and not yet finished (queue depth).",
            [({}, server.get("inflight", 0))],
        ),
        gauge_family(
            "repro_server_queue_limit",
            "Admission-control bound on queued + in-flight jobs.",
            [({}, server.get("queue_limit", 0))],
        ),
        gauge_family(
            "repro_server_uptime_seconds",
            "Seconds since the server started.",
            [({}, server.get("uptime_seconds", 0.0))],
        ),
        counter_family(
            "repro_pool_jobs_total",
            "Worker-pool jobs by state.",
            [
                ({"state": state}, pool.get(state, 0))
                for state in ("submitted", "completed", "failed")
            ],
        ),
        gauge_family(
            "repro_pool_workers",
            "Size of the worker pool.",
            [({"mode": str(pool.get("mode", "unknown"))}, pool.get("workers", 0))],
        ),
        gauge_family(
            "repro_pool_queue_depth",
            "Jobs admitted but not yet dispatched to a worker, by priority "
            "class.",
            [
                ({"class": klass}, depth)
                for klass, depth in sorted(
                    (pool.get("queue_depth") or {}).items()
                )
            ],
        ),
        gauge_family(
            "repro_pool_active_jobs",
            "Jobs currently executing on a worker.",
            [({}, pool.get("active", 0))],
        ),
        counter_family(
            "repro_pool_priority_bumps_total",
            "Queued jobs dispatched by the age-based anti-starvation bump "
            "instead of smallest-cost order.",
            [({}, pool.get("priority_bumps", 0))],
        ),
    ]
    if cache.get("backend") == "sqlite":
        families.append(
            counter_family(
                "repro_cache_operations_total",
                "Persistent component-cache operations (cumulative across restarts).",
                [
                    ({"operation": op}, cache.get(op, 0))
                    for op in ("hits", "misses", "stores", "evictions")
                ],
            )
        )
        families.append(
            gauge_family(
                "repro_cache_entries",
                "Components currently stored in the persistent cache.",
                [({}, cache.get("entries", 0))],
            )
        )
    if extra_families:
        families.extend(extra_families)
    return render_metrics(families)


class MetricSample:
    """One parsed sample line: full sample name, labels, numeric value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def labels_key(self, drop: Sequence[str] = ()) -> Tuple[Tuple[str, str], ...]:
        return tuple(
            sorted((k, v) for k, v in self.labels.items() if k not in drop)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricSample({self.name!r}, {self.labels!r}, {self.value!r})"


class ParsedFamily:
    """One parsed metric family: TYPE/HELP plus its sample lines.

    For histogram families ``samples`` holds the raw ``_bucket``/``_sum``/
    ``_count`` lines; :meth:`ParsedMetrics.histogram` reconstructs
    :class:`HistogramSnapshot` objects from them.
    """

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, mtype: str, help_text: str) -> None:
        self.name = name
        self.type = mtype
        self.help = help_text
        self.samples: List[MetricSample] = []


class ParsedMetrics:
    """Structured view of one text exposition payload.

    ``families`` preserves declaration order; ``problems`` accumulates every
    format violation found while parsing (the lint view).  The accessors are
    what the federation layer consumes: per-sample values, histogram series
    enumeration, and :class:`HistogramSnapshot` reconstruction from
    cumulative bucket lines.
    """

    def __init__(self) -> None:
        self.families: Dict[str, ParsedFamily] = {}
        self.problems: List[str] = []

    def family(self, name: str) -> Optional[ParsedFamily]:
        return self.families.get(name)

    def value(
        self, sample_name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """Value of one exact sample (full sample name + exact label set)."""
        want = tuple(sorted((labels or {}).items()))
        for family in self.families.values():
            for sample in family.samples:
                if sample.name == sample_name and sample.labels_key() == want:
                    return sample.value
        return None

    def histogram_series(self, family_name: str) -> List[Dict[str, str]]:
        """Distinct base label sets (``le`` stripped) of a histogram family."""
        family = self.families.get(family_name)
        if family is None or family.type != "histogram":
            return []
        seen: Dict[Tuple[Tuple[str, str], ...], Dict[str, str]] = {}
        for sample in family.samples:
            if not sample.name.endswith("_bucket"):
                continue
            key = sample.labels_key(drop=("le",))
            seen.setdefault(key, dict(key))
        return [seen[key] for key in sorted(seen)]

    def histogram(
        self, family_name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[HistogramSnapshot]:
        """Rebuild the :class:`HistogramSnapshot` of one histogram series.

        Inverts the cumulative ``_bucket`` exposition back into per-bucket
        counts; the ``+Inf`` bucket supplies ``total_count`` and ``_sum``
        supplies ``total_sum``, so ``render → parse → histogram`` round-trips
        exactly.
        """
        family = self.families.get(family_name)
        if family is None or family.type != "histogram":
            return None
        want = tuple(sorted((labels or {}).items()))
        buckets: List[Tuple[float, float]] = []
        total_sum: Optional[float] = None
        total_count: Optional[float] = None
        for sample in family.samples:
            if sample.name == family_name + "_bucket":
                if sample.labels_key(drop=("le",)) != want:
                    continue
                le_text = sample.labels.get("le", "")
                le = math.inf if le_text == "+Inf" else float(le_text)
                buckets.append((le, sample.value))
            elif sample.name == family_name + "_sum":
                if sample.labels_key() == want:
                    total_sum = sample.value
            elif sample.name == family_name + "_count":
                if sample.labels_key() == want:
                    total_count = sample.value
        if not buckets:
            return None
        buckets.sort(key=lambda pair: pair[0])
        bounds = tuple(le for le, _ in buckets if not math.isinf(le))
        counts: List[int] = []
        previous = 0.0
        for le, value in buckets:
            if math.isinf(le):
                continue
            counts.append(int(value - previous))
            previous = value
        inf_value = buckets[-1][1] if math.isinf(buckets[-1][0]) else previous
        count = total_count if total_count is not None else inf_value
        return HistogramSnapshot(
            bounds,
            tuple(counts),
            int(count),
            float(total_sum if total_sum is not None else 0.0),
        )


def parse_metrics_text(text: str) -> ParsedMetrics:
    """Parse Prometheus text exposition into families, samples and problems.

    This is a real parser of the 0.0.4 text format as this codebase emits
    and scrapes it: HELP/TYPE tracking, label syntax with escape handling,
    value parsing (including ``+Inf``/``-Inf``/``NaN``), plus the histogram
    invariants a scraper relies on (cumulative ``le`` bucket monotonicity,
    final ``+Inf`` bucket equal to ``_count``).  Violations land in
    ``ParsedMetrics.problems`` — :func:`lint_metrics_text` is the thin
    wrapper that returns just those.
    """
    parsed = ParsedMetrics()
    problems = parsed.problems
    declared: Dict[str, str] = {}
    helped: Dict[str, str] = {}
    histograms: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    hist_counts: Dict[str, Dict[str, float]] = {}

    def base_name(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                trimmed = sample_name[: -len(suffix)]
                if declared.get(trimmed) == "histogram":
                    return trimmed
        return sample_name

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3]:
                problems.append(f"line {lineno}: HELP without text")
            else:
                helped[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {lineno}: bad TYPE line {line!r}")
                continue
            name = parts[2]
            if name in declared:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            if name not in helped:
                problems.append(f"line {lineno}: TYPE {name} without preceding HELP")
            declared[name] = parts[3]
            if name not in parsed.families:
                parsed.families[name] = ParsedFamily(
                    name, parts[3], helped.get(name, "")
                )
            continue
        if line.startswith("#"):
            continue
        # Sample line: name[{labels}] value
        brace = line.find("{")
        labels: Dict[str, str] = {}
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                problems.append(f"line {lineno}: unbalanced braces")
                continue
            name = line[:brace]
            label_blob = line[brace + 1 : close]
            rest = line[close + 1 :].strip()
            i = 0
            while i < len(label_blob):
                eq = label_blob.find("=", i)
                if eq < 0 or eq + 1 >= len(label_blob) or label_blob[eq + 1] != '"':
                    problems.append(f"line {lineno}: malformed label pair")
                    break
                key = label_blob[i:eq].strip().lstrip(",").strip()
                j = eq + 2
                value_chars: List[str] = []
                ok = False
                while j < len(label_blob):
                    ch = label_blob[j]
                    if ch == "\\":
                        if j + 1 >= len(label_blob) or label_blob[j + 1] not in ('"', "\\", "n"):
                            break
                        value_chars.append(
                            {"n": "\n", '"': '"', "\\": "\\"}[label_blob[j + 1]]
                        )
                        j += 2
                        continue
                    if ch == '"':
                        ok = True
                        j += 1
                        break
                    if ch == "\n":
                        break
                    value_chars.append(ch)
                    j += 1
                if not ok:
                    problems.append(f"line {lineno}: unterminated label value")
                    break
                labels[key] = "".join(value_chars)
                i = j
                if i < len(label_blob) and label_blob[i] == ",":
                    i += 1
        else:
            name, _, rest = line.partition(" ")
            rest = rest.strip()
        value_text = rest.split(" ", 1)[0] if rest else ""
        try:
            if value_text in ("+Inf", "-Inf"):
                value = math.inf if value_text == "+Inf" else -math.inf
            elif value_text == "NaN":
                value = math.nan
            else:
                value = float(value_text)
        except ValueError:
            problems.append(f"line {lineno}: unparseable value {value_text!r}")
            continue
        family = base_name(name)
        if family not in declared:
            problems.append(f"line {lineno}: sample {name} without TYPE declaration")
            continue
        parsed.families[family].samples.append(MetricSample(name, labels, value))
        if declared[family] == "histogram" and name.endswith("_bucket"):
            le_text = labels.get("le")
            if le_text is None:
                problems.append(f"line {lineno}: histogram bucket without le label")
                continue
            le = math.inf if le_text == "+Inf" else float(le_text)
            series = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            )
            histograms.setdefault(family, {}).setdefault(series, []).append((le, value))
        if declared[family] == "histogram" and name.endswith("_count"):
            series = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            hist_counts.setdefault(family, {})[series] = value

    for family, series_map in histograms.items():
        for series, buckets in series_map.items():
            ordered = sorted(buckets, key=lambda pair: pair[0])
            last = -math.inf
            for le, cumulative in ordered:
                if cumulative < last:
                    problems.append(
                        f"{family}{{{series}}}: bucket counts decrease at le={le}"
                    )
                last = cumulative
            if not ordered or not math.isinf(ordered[-1][0]):
                problems.append(f"{family}{{{series}}}: missing +Inf bucket")
            else:
                count = hist_counts.get(family, {}).get(series)
                if count is not None and count != ordered[-1][1]:
                    problems.append(
                        f"{family}{{{series}}}: +Inf bucket != _count"
                    )
    return parsed


def lint_metrics_text(text: str) -> List[str]:
    """Parse text exposition and return just the format problems.

    Thin wrapper over :func:`parse_metrics_text`, kept as the test-suite
    entry point: an empty list means the payload is lint-clean.
    """
    return parse_metrics_text(text).problems
