"""Prometheus text exposition of the serving counters.

``GET /metrics`` on the decomposition server and on the cluster coordinator
renders the same numbers ``GET /stats`` reports as JSON, in the Prometheus
text format (version 0.0.4) so a stock Prometheus/VictoriaMetrics scraper
can watch a farm without a custom exporter.  Only counters and gauges are
exposed — no histograms, which keeps the endpoint allocation-free and the
module stdlib-only.

:func:`render_metrics` is the shared formatter; :func:`server_metrics_text`
maps a :meth:`DecompositionServer._stats` snapshot onto metric families (the
coordinator has its own mapping in :mod:`repro.cluster.coordinator`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

#: Content type of the text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Number = Union[int, float]
#: One sample: (label dict, value).
Sample = Tuple[Mapping[str, str], Number]
#: One family: (name, type, help, samples).
MetricFamily = Tuple[str, str, str, Sequence[Sample]]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: Number) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_metrics(families: Iterable[MetricFamily]) -> str:
    """Render metric families to the Prometheus text format."""
    lines: List[str] = []
    for name, mtype, help_text, samples in families:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            if labels:
                rendered = ",".join(
                    f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
                )
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def counter_family(
    name: str, help_text: str, samples: Sequence[Sample]
) -> MetricFamily:
    return (name, "counter", help_text, samples)


def gauge_family(name: str, help_text: str, samples: Sequence[Sample]) -> MetricFamily:
    return (name, "gauge", help_text, samples)


def server_metrics_text(stats: Dict) -> str:
    """Render a ``DecompositionServer._stats`` snapshot as Prometheus text."""
    server: Dict = stats.get("server", {})
    pool: Dict = stats.get("pool", {})
    cache: Dict = stats.get("cache", {})
    families: List[MetricFamily] = [
        counter_family(
            "repro_server_requests_total",
            "HTTP requests by terminal result.",
            [
                ({"result": result}, server.get(result, 0))
                for result in ("received", "served", "rejected", "failed", "timeouts", "invalid")
            ],
        ),
        counter_family(
            "repro_server_components_total",
            "Component requests served via POST /component.",
            [({}, server.get("components", 0))],
        ),
        counter_family(
            "repro_server_component_cache_hits_total",
            "Component requests answered from the component cache "
            "(cache-affinity hits when routed by a cluster coordinator).",
            [({}, server.get("component_cache_hits", 0))],
        ),
        counter_family(
            "repro_server_component_batches_total",
            "Component micro-batch requests served via POST /components.",
            [({}, server.get("component_batches", 0))],
        ),
        counter_family(
            "repro_server_batched_components_total",
            "Components received inside POST /components micro-batches "
            "(divide by repro_server_component_batches_total for the mean "
            "batch size).",
            [({}, server.get("batched_components", 0))],
        ),
        gauge_family(
            "repro_server_inflight_jobs",
            "Jobs admitted and not yet finished (queue depth).",
            [({}, server.get("inflight", 0))],
        ),
        gauge_family(
            "repro_server_queue_limit",
            "Admission-control bound on queued + in-flight jobs.",
            [({}, server.get("queue_limit", 0))],
        ),
        gauge_family(
            "repro_server_uptime_seconds",
            "Seconds since the server started.",
            [({}, server.get("uptime_seconds", 0.0))],
        ),
        counter_family(
            "repro_pool_jobs_total",
            "Worker-pool jobs by state.",
            [
                ({"state": state}, pool.get(state, 0))
                for state in ("submitted", "completed", "failed")
            ],
        ),
        gauge_family(
            "repro_pool_workers",
            "Size of the worker pool.",
            [({"mode": str(pool.get("mode", "unknown"))}, pool.get("workers", 0))],
        ),
        gauge_family(
            "repro_pool_queue_depth",
            "Jobs admitted but not yet dispatched to a worker, by priority "
            "class.",
            [
                ({"class": klass}, depth)
                for klass, depth in sorted(
                    (pool.get("queue_depth") or {}).items()
                )
            ],
        ),
        gauge_family(
            "repro_pool_active_jobs",
            "Jobs currently executing on a worker.",
            [({}, pool.get("active", 0))],
        ),
        counter_family(
            "repro_pool_priority_bumps_total",
            "Queued jobs dispatched by the age-based anti-starvation bump "
            "instead of smallest-cost order.",
            [({}, pool.get("priority_bumps", 0))],
        ),
    ]
    if cache.get("backend") == "sqlite":
        families.append(
            counter_family(
                "repro_cache_operations_total",
                "Persistent component-cache operations (cumulative across restarts).",
                [
                    ({"operation": op}, cache.get(op, 0))
                    for op in ("hits", "misses", "stores", "evictions")
                ],
            )
        )
        families.append(
            gauge_family(
                "repro_cache_entries",
                "Components currently stored in the persistent cache.",
                [({}, cache.get("entries", 0))],
            )
        )
    return render_metrics(families)
