"""JSON wire schema of the decomposition service.

One module owns the request/response shapes so the server, the blocking
client and the tests cannot drift apart.

Request (``POST /decompose``)::

    {
      "layout":  {... repro-layout-v1 dict ...},   # or instead:
      "gds_b64": "<base64 GDSII bytes>",
      "name":    "optional request name",
      "layer":   "metal1",          # default: first layer of the layout
      "colors":  4,                 # K, default 4
      "algorithm": "sdp-backtrack", # default
      "min_spacing": 160            # optional min coloring distance override
    }

``POST /batch`` wraps many of the above: ``{"layouts": [<request>, ...]}``
with top-level ``colors``/``algorithm``/``layer``/``min_spacing`` applied as
defaults to every item.

Response (one decomposition)::

    {
      "name": ..., "layer": ..., "algorithm": ..., "num_colors": K,
      "conflicts": n, "stitches": n, "cost": float, "vertices": n,
      "mask_counts": {"0": n, ...},
      "masks": {... repro-layout-v1 dict of layers mask0..mask(K-1) ...},
      "seconds": float
    }

``masks`` is exactly ``result.to_mask_layout().to_dict()`` plus the standard
format marker, so a client can feed it straight to
:meth:`Layout.from_dict` or save it as a ``.json`` layout file.  Everything
except ``seconds`` is deterministic: byte-compare two responses with
``canonical_json`` to prove two solves were identical.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.core.decomposer import DecompositionResult
from repro.core.options import DecomposerOptions
from repro.errors import ReproError
from repro.geometry.layout import Layout
from repro.io.gds import read_gds
from repro.io.jsonio import FORMAT_MARKER


class ProtocolError(ReproError):
    """Raised for malformed service requests (mapped to HTTP 400)."""


#: Solve parameters accepted at the request top level and per batch item.
_OPTION_KEYS = ("layer", "colors", "algorithm", "min_spacing", "name")


def build_options(
    colors: int = 4,
    algorithm: str = "sdp-backtrack",
    min_spacing: Optional[int] = None,
) -> DecomposerOptions:
    """Map wire-level solve parameters onto :class:`DecomposerOptions`.

    Delegates the colors/algorithm preset expansion to
    :func:`repro.runtime.component_io.options_for` — the one mapping shared
    with the cluster's component requests, so a layout solved here and a
    component routed there can never disagree on options (or cache keys).
    """
    from repro.runtime.component_io import ComponentWireError, options_for

    try:
        options = options_for(colors, algorithm)
    except ComponentWireError as exc:
        # e.g. ConfigurationError for colors < 2 — a client mistake, not a
        # server fault: surface it as a 400, never a 500.
        raise ProtocolError(str(exc)) from exc
    if min_spacing is not None:
        if not isinstance(min_spacing, int) or isinstance(min_spacing, bool):
            raise ProtocolError(f"'min_spacing' must be an integer, got {min_spacing!r}")
        options.construction.min_coloring_distance = min_spacing
    try:
        options.validate()
    except ReproError as exc:
        raise ProtocolError(str(exc)) from exc
    return options


def parse_layout(payload: Dict) -> Tuple[str, Layout]:
    """Extract (name, layout) from a request dict.

    Exactly one of ``layout`` (repro JSON dict) and ``gds_b64`` (base64
    GDSII) must be present.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    has_json = "layout" in payload
    has_gds = "gds_b64" in payload
    if has_json == has_gds:
        raise ProtocolError("provide exactly one of 'layout' and 'gds_b64'")
    if has_json:
        data = payload["layout"]
        if not isinstance(data, dict):
            raise ProtocolError("'layout' must be a JSON object")
        marker = data.get("format", FORMAT_MARKER)
        if marker != FORMAT_MARKER:
            raise ProtocolError(f"'layout' has unknown format marker {marker!r}")
        try:
            layout = Layout.from_dict(data)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid 'layout' payload: {exc}") from exc
    else:
        raw = payload["gds_b64"]
        if not isinstance(raw, str):
            raise ProtocolError("'gds_b64' must be a base64 string")
        try:
            blob = base64.b64decode(raw, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise ProtocolError(f"'gds_b64' is not valid base64: {exc}") from exc
        # The GDS reader is file-based; round-trip through a temp file.  The
        # temp name would otherwise leak into Layout.name (and the response),
        # so it is overridden below.
        fd, tmp = tempfile.mkstemp(suffix=".gds")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            try:
                layout = read_gds(tmp)
            except ReproError as exc:
                raise ProtocolError(f"invalid 'gds_b64' GDSII payload: {exc}") from exc
            layout.name = "gds-upload"
        finally:
            os.unlink(tmp)
    name = payload.get("name", layout.name or "layout")
    if not isinstance(name, str):
        raise ProtocolError(f"'name' must be a string, got {name!r}")
    return name, layout


def parse_decompose_request(payload: Dict, defaults: Optional[Dict] = None) -> Dict:
    """Validate a decompose request into a plain job dict.

    The job dict is what crosses the process boundary to the worker pool, so
    it stays JSON-level (the layout as a dict, options as scalars) — cheap to
    pickle and impossible to desynchronise from the wire schema.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    merged = dict(defaults or {})
    merged.update({k: payload[k] for k in _OPTION_KEYS if k in payload})
    name, layout = parse_layout(payload)
    # Validate solve parameters up front: a bad request must 400 in the
    # server process, not explode later inside a worker.
    build_options(
        colors=merged.get("colors", 4),
        algorithm=merged.get("algorithm", "sdp-backtrack"),
        min_spacing=merged.get("min_spacing"),
    )
    layer = merged.get("layer")
    if layer is None:
        layers = layout.layers()
        layer = layers[0] if layers else "metal1"
    if not isinstance(layer, str):
        raise ProtocolError(f"'layer' must be a string, got {layer!r}")
    return {
        "name": merged.get("name", name),
        "layout": layout.to_dict(),
        "layer": layer,
        "colors": merged.get("colors", 4),
        "algorithm": merged.get("algorithm", "sdp-backtrack"),
        "min_spacing": merged.get("min_spacing"),
    }


def parse_batch_request(payload: Dict) -> List[Dict]:
    """Validate a batch request into a list of job dicts."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    layouts = payload.get("layouts")
    if not isinstance(layouts, list) or not layouts:
        raise ProtocolError("'layouts' must be a non-empty array")
    defaults = {k: payload[k] for k in _OPTION_KEYS if k in payload and k != "name"}
    jobs = []
    for position, item in enumerate(layouts):
        try:
            jobs.append(parse_decompose_request(item, defaults=defaults))
        except ProtocolError as exc:
            raise ProtocolError(f"layouts[{position}]: {exc}") from exc
    from repro.runtime.batch import dedupe_names

    for job, name in zip(jobs, dedupe_names(job["name"] for job in jobs)):
        job["name"] = name
    return jobs


def run_job(job: Dict, decomposer_factory) -> Dict:
    """Execute one job dict and encode the response payload.

    ``decomposer_factory(options)`` returns the :class:`Decomposer` to use —
    the worker pool binds its per-process cache there.  Lives next to the
    parsers so request decoding and response encoding stay one module.
    """
    layout = Layout.from_dict(job["layout"])
    options = build_options(
        colors=job["colors"],
        algorithm=job["algorithm"],
        min_spacing=job.get("min_spacing"),
    )
    decomposer = decomposer_factory(options)
    result = decomposer.decompose(layout, layer=job["layer"])
    return result_to_payload(job["name"], job["layer"], result)


def result_to_payload(name: str, layer: str, result: DecompositionResult) -> Dict:
    """Encode one :class:`DecompositionResult` as the response dict."""
    masks = result.to_mask_layout().to_dict()
    masks["format"] = FORMAT_MARKER
    solution = result.solution
    return {
        "name": name,
        "layer": layer,
        "algorithm": solution.algorithm,
        "num_colors": solution.num_colors,
        "conflicts": solution.conflicts,
        "stitches": solution.stitches,
        "cost": solution.cost,
        "vertices": result.construction.graph.num_vertices,
        "mask_counts": {str(k): v for k, v in sorted(result.mask_counts().items())},
        "masks": masks,
        "seconds": solution.total_seconds,
    }


def canonical_json(payload: Dict, ignore: Tuple[str, ...] = ("seconds",)) -> str:
    """Deterministic serialisation of a response for byte-for-byte comparison.

    Strips the keys in ``ignore`` (wall-clock timings differ run to run);
    everything left is solver output, so equal strings mean identical masks,
    conflict counts and stitch counts.
    """
    trimmed = {k: v for k, v in payload.items() if k not in ignore}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))
