"""Blocking HTTP client for the decomposition service.

A deliberately small wrapper over :mod:`http.client` — enough for tests,
examples and scripted callers to talk to :class:`DecompositionServer`
without hand-writing requests.  Each call opens one connection (the server
speaks ``Connection: close``), so a :class:`ServiceClient` is cheap, state-
free and safe to share across threads.

::

    client = ServiceClient("127.0.0.1", 8000)
    client.wait_until_healthy()
    response = client.decompose(layout, algorithm="linear")
    masks = Layout.from_dict(response["masks"])
"""

from __future__ import annotations

import base64
import http.client
import json
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.geometry.layout import Layout


class ServiceError(ReproError):
    """A non-2xx service response (or no response at all).

    ``status`` is the HTTP status (0 when the connection itself failed) and
    ``retry_after`` carries the server's backpressure hint on 503s.
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """Blocking client bound to one server address."""

    def __init__(self, host: str, port: int, timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def _request(self, method: str, path: str, payload: Optional[Dict] = None) -> Dict:
        body = None
        headers = {"Accept": "application/json", "Connection": "close"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                raise ServiceError(0, f"cannot reach {self.host}:{self.port}: {exc}") from exc
        finally:
            connection.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(
                response.status, f"non-JSON response: {raw[:200]!r}"
            ) from exc
        if response.status >= 400:
            message = decoded.get("error", {}).get("message", raw.decode(errors="replace"))
            retry_after = response.headers.get("Retry-After")
            raise ServiceError(
                response.status,
                message,
                retry_after=float(retry_after) if retry_after else None,
            )
        return decoded

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def decompose(
        self,
        layout: Optional[Layout] = None,
        gds_bytes: Optional[bytes] = None,
        name: Optional[str] = None,
        layer: Optional[str] = None,
        colors: Optional[int] = None,
        algorithm: Optional[str] = None,
        min_spacing: Optional[int] = None,
    ) -> Dict:
        """Decompose one layout; returns the response payload dict."""
        return self._request(
            "POST", "/decompose", self._job_payload(
                layout, gds_bytes, name, layer, colors, algorithm, min_spacing
            )
        )

    def decompose_batch(
        self,
        layouts: List[Tuple[str, Layout]],
        layer: Optional[str] = None,
        colors: Optional[int] = None,
        algorithm: Optional[str] = None,
        min_spacing: Optional[int] = None,
    ) -> Dict:
        """Decompose many named layouts in one request."""
        payload: Dict = {
            "layouts": [
                {"name": item_name, "layout": item_layout.to_dict()}
                for item_name, item_layout in layouts
            ]
        }
        for key, value in (
            ("layer", layer),
            ("colors", colors),
            ("algorithm", algorithm),
            ("min_spacing", min_spacing),
        ):
            if value is not None:
                payload[key] = value
        return self._request("POST", "/batch", payload)

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _job_payload(
        layout: Optional[Layout],
        gds_bytes: Optional[bytes],
        name: Optional[str],
        layer: Optional[str],
        colors: Optional[int],
        algorithm: Optional[str],
        min_spacing: Optional[int],
    ) -> Dict:
        if (layout is None) == (gds_bytes is None):
            raise ValueError("provide exactly one of layout and gds_bytes")
        payload: Dict = {}
        if layout is not None:
            payload["layout"] = layout.to_dict()
        else:
            payload["gds_b64"] = base64.b64encode(gds_bytes).decode("ascii")
        for key, value in (
            ("name", name),
            ("layer", layer),
            ("colors", colors),
            ("algorithm", algorithm),
            ("min_spacing", min_spacing),
        ):
            if value is not None:
                payload[key] = value
        return payload

    def wait_until_healthy(self, timeout: float = 30.0, interval: float = 0.1) -> Dict:
        """Poll ``/healthz`` until the server answers ``ok`` (or time out)."""
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            try:
                health = self.healthz()
                if health.get("status") == "ok":
                    return health
            except ServiceError as exc:
                last = exc
            time.sleep(interval)
        raise ServiceError(0, f"server not healthy after {timeout}s: {last}")
