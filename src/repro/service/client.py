"""Blocking HTTP client for the decomposition service.

A deliberately small wrapper over :mod:`http.client` — enough for tests,
examples, the cluster coordinator and scripted callers to talk to
:class:`DecompositionServer` without hand-writing requests.

Connections are **persistent**: each thread keeps one keep-alive connection
per server address and reuses it across calls, which is what makes the
coordinator's component fan-out cheap (no TCP handshake per component).  A
request that fails on a pooled connection — the server may have closed an
idle connection between calls — is retried once on a fresh one; requests
are deterministic solves, so the retry is safe.  The per-thread pooling
keeps a shared :class:`ServiceClient` thread-safe.

::

    client = ServiceClient("127.0.0.1", 8000)
    client.wait_until_healthy()
    response = client.decompose(layout, algorithm="linear")
    masks = Layout.from_dict(response["masks"])
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
import threading
import time
from datetime import datetime, timezone
from email.utils import parsedate_to_datetime
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.geometry.layout import Layout
from repro.service.http import CLIENT_HEADER, TRACE_HEADER

#: One server address.
Address = Tuple[str, int]


def parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Parse a ``Retry-After`` header into seconds, defensively.

    RFC 9110 allows both delta-seconds and an HTTP-date; real servers and
    proxies emit both, plus the occasional junk.  A backpressure *hint* must
    never turn into a client crash, so anything unparseable degrades to
    ``None`` (caller falls back to its own pacing) and dates in the past
    clamp to ``0.0``.
    """
    if value is None:
        return None
    text = str(value).strip()
    if not text:
        return None
    try:
        seconds = float(text)
    except ValueError:
        try:
            target = parsedate_to_datetime(text)
        except (TypeError, ValueError, IndexError):
            return None
        if target is None:
            return None
        if target.tzinfo is None:
            target = target.replace(tzinfo=timezone.utc)
        seconds = (target - datetime.now(timezone.utc)).total_seconds()
    if seconds != seconds or seconds in (float("inf"), float("-inf")):  # NaN/inf
        return None
    return max(0.0, seconds)


class ServiceError(ReproError):
    """A non-2xx service response (or no response at all).

    ``status`` is the HTTP status (0 when the connection itself failed),
    ``retry_after`` carries the server's backpressure hint on 503s, and
    ``is_timeout`` distinguishes "the server did not answer in time" from
    "the server is unreachable" — callers doing liveness inference (the
    cluster coordinator) must not treat a slow solve as a dead node.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        is_timeout: bool = False,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.retry_after = retry_after
        self.is_timeout = is_timeout


class ServiceClient:
    """Blocking client bound to one server address."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 600.0,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Self-declared identity sent as the X-Repro-Client header on every
        #: request, so journaled servers meter this caller's usage under one
        #: name (see ``repro-decompose usage``).
        self.client_id = client_id
        self._local = threading.local()
        #: Every thread's connection pool, so :meth:`close` can reach them all.
        self._pools: List[Dict[Address, http.client.HTTPConnection]] = []
        self._pools_lock = threading.Lock()

    # ------------------------------------------------------------ transport
    def _connections(self) -> Dict[Address, http.client.HTTPConnection]:
        pool = getattr(self._local, "connections", None)
        if pool is None:
            pool = {}
            self._local.connections = pool
            with self._pools_lock:
                self._pools.append(pool)
        return pool

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Safety net for clients dropped without close(): shut the pooled
        # keep-alive sockets down deterministically instead of leaving them
        # to socket.__del__ (which raises ResourceWarning).  Interpreter
        # shutdown can leave attributes half-torn-down, hence the guard.
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Close every pooled connection, across all threads.

        Only safe once no request is in flight on this client (e.g. after
        the threads using it have been joined) — the usual lifecycle of the
        coordinator's fan-out pool and of test harnesses.
        """
        with self._pools_lock:
            pools = list(self._pools)
        for pool in pools:
            for connection in list(pool.values()):
                connection.close()
            pool.clear()

    def _request_bytes(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
        address: Address,
    ):
        """Send one request, reusing the thread's keep-alive connection.

        Returns ``(status, response headers, raw body)``.  A failure on a
        *reused* connection is retried once on a fresh one (the server may
        have closed it while idle); a failure on a fresh connection is the
        server being unreachable and raises ``ServiceError(status=0)``.
        A timeout is never retried — the server is still working on the
        request, and re-sending it would double the load.
        """
        host, port = address
        pool = self._connections()
        for attempt in (0, 1):
            connection = pool.get(address)
            fresh = connection is None
            if connection is None:
                connection = http.client.HTTPConnection(host, port, timeout=self.timeout)
                pool[address] = connection
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except socket.timeout as exc:
                # Caught before the OSError arm: a timeout means the server
                # accepted the request and is (still) solving it — neither a
                # stale connection nor a dead server.
                connection.close()
                pool.pop(address, None)
                raise ServiceError(
                    0,
                    f"no response from {host}:{port} within {self.timeout}s: {exc}",
                    is_timeout=True,
                ) from exc
            except (ConnectionError, OSError, http.client.HTTPException) as exc:
                connection.close()
                pool.pop(address, None)
                if not fresh and attempt == 0:
                    continue  # stale keep-alive connection: one fresh retry
                raise ServiceError(0, f"cannot reach {host}:{port}: {exc}") from exc
            if response.will_close:
                connection.close()
                pool.pop(address, None)
            # Thread-local so concurrent fan-out threads don't clobber each
            # other's ids; None when the server answered without one.
            self._local.last_trace_id = response.headers.get(TRACE_HEADER)
            return response.status, response.headers, raw
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def last_trace_id(self) -> Optional[str]:
        """Trace id the calling thread's most recent response advertised."""
        return getattr(self._local, "last_trace_id", None)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        address: Optional[Address] = None,
        trace_id: Optional[str] = None,
    ) -> Dict:
        body = None
        headers = {"Accept": "application/json", "Connection": "keep-alive"}
        if trace_id:
            headers[TRACE_HEADER] = trace_id
        if self.client_id:
            headers[CLIENT_HEADER] = self.client_id
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        status, response_headers, raw = self._request_bytes(
            method, path, body, headers, address or (self.host, self.port)
        )
        return self._json_response(status, response_headers, raw)

    @staticmethod
    def _json_response(status: int, response_headers, raw: bytes) -> Dict:
        """Decode one response as JSON, mapping error statuses to ServiceError."""
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(status, f"non-JSON response: {raw[:200]!r}") from exc
        if status >= 400:
            message = decoded.get("error", {}).get("message", raw.decode(errors="replace"))
            raise ServiceError(
                status,
                message,
                retry_after=parse_retry_after(response_headers.get("Retry-After")),
            )
        return decoded

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def metrics_text(self, path: str = "/metrics") -> str:
        """Fetch a Prometheus text exposition endpoint (default ``/metrics``).

        ``path`` admits the coordinator's federated view:
        ``metrics_text("/cluster/metrics")`` or, forcing a synchronous
        scrape round first, ``metrics_text("/cluster/metrics?refresh=1")``.
        """
        status, _, raw = self._request_bytes(
            "GET",
            path,
            None,
            {"Accept": "text/plain", "Connection": "keep-alive"},
            (self.host, self.port),
        )
        if status >= 400:
            raise ServiceError(status, raw.decode(errors="replace"))
        return raw.decode("utf-8")

    def decompose(
        self,
        layout: Optional[Layout] = None,
        gds_bytes: Optional[bytes] = None,
        name: Optional[str] = None,
        layer: Optional[str] = None,
        colors: Optional[int] = None,
        algorithm: Optional[str] = None,
        min_spacing: Optional[int] = None,
        trace_id: Optional[str] = None,
    ) -> Dict:
        """Decompose one layout; returns the response payload dict.

        ``trace_id`` lets a caller supply its own request identity; without
        one, a tracing-enabled server mints an id and echoes it back in the
        response header (see :attr:`last_trace_id`).
        """
        return self._request(
            "POST", "/decompose", self._job_payload(
                layout, gds_bytes, name, layer, colors, algorithm, min_spacing
            ),
            trace_id=trace_id,
        )

    def decompose_batch(
        self,
        layouts: List[Tuple[str, Layout]],
        layer: Optional[str] = None,
        colors: Optional[int] = None,
        algorithm: Optional[str] = None,
        min_spacing: Optional[int] = None,
    ) -> Dict:
        """Decompose many named layouts in one request."""
        payload: Dict = {
            "layouts": [
                {"name": item_name, "layout": item_layout.to_dict()}
                for item_name, item_layout in layouts
            ]
        }
        for key, value in (
            ("layer", layer),
            ("colors", colors),
            ("algorithm", algorithm),
            ("min_spacing", min_spacing),
        ):
            if value is not None:
                payload[key] = value
        return self._request("POST", "/batch", payload)

    def component(self, payload: Dict) -> Dict:
        """Solve one decomposition-graph component (``POST /component``).

        ``payload`` is a :func:`repro.runtime.component_io.component_request`
        dict; the response carries the canonical rank-space coloring.
        """
        return self._request("POST", "/component", payload)

    def components(self, payload: Dict, trace_id: Optional[str] = None) -> Dict:
        """Solve a component micro-batch (``POST /components``).

        ``payload`` is a
        :func:`repro.runtime.component_io.components_request` dict; the
        response's ``results`` list is aligned with the request and carries
        a per-component solve or error envelope.  ``trace_id`` additionally
        rides the trace header — the channel pre-tracing servers ignore.
        """
        return self._request("POST", "/components", payload, trace_id=trace_id)

    def components_binary(self, body: bytes, trace_id: Optional[str] = None) -> Dict:
        """Solve a component micro-batch shipped as a binary frame.

        ``body`` is an
        :func:`repro.runtime.wire_binary.encode_components_frame` blob; the
        response is the same JSON envelope :meth:`components` returns.  A
        pre-v2 server answers 400 (it tries to parse the frame as JSON) —
        callers use that signal to fall back to the JSON schema.
        """
        from repro.runtime.wire_binary import COMPONENTS_V2_CONTENT_TYPE

        headers = {
            "Accept": "application/json",
            "Connection": "keep-alive",
            "Content-Type": COMPONENTS_V2_CONTENT_TYPE,
        }
        if trace_id:
            headers[TRACE_HEADER] = trace_id
        status, response_headers, raw = self._request_bytes(
            "POST", "/components", body, headers, (self.host, self.port)
        )
        return self._json_response(status, response_headers, raw)

    def trace(self, trace_id: str) -> Dict:
        """Fetch one request's assembled trace tree (``GET /trace/<id>``)."""
        return self._request("GET", f"/trace/{trace_id}")

    def slo(self) -> Dict:
        """Fetch the coordinator's SLO status (``GET /slo``)."""
        return self._request("GET", "/slo")

    def watch_events(
        self,
        max_events: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        """Stream ``GET /watch`` journal events as ``(event, payload)`` pairs.

        A generator over the server's SSE feed on a dedicated connection
        (the stream is close-delimited, so it cannot share the keep-alive
        pool).  Heartbeat comments and ``retry:`` hints are filtered out;
        iteration ends after ``max_events`` events, when the server drains,
        or when the socket times out.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )
        try:
            connection.request(
                "GET", "/watch", headers={"Accept": "text/event-stream"}
            )
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                self._json_response(response.status, response.headers, raw)
                raise ServiceError(response.status, raw.decode(errors="replace"))
            delivered = 0
            event_name: Optional[str] = None
            data_lines: List[str] = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # heartbeat / informational comment
                if not line:  # blank line terminates one SSE frame
                    if data_lines:
                        payload = json.loads("\n".join(data_lines))
                        yield event_name, payload
                        delivered += 1
                        if max_events is not None and delivered >= max_events:
                            return
                    event_name, data_lines = None, []
                    continue
                if line.startswith("event:"):
                    event_name = line[len("event:"):].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
        finally:
            connection.close()

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _job_payload(
        layout: Optional[Layout],
        gds_bytes: Optional[bytes],
        name: Optional[str],
        layer: Optional[str],
        colors: Optional[int],
        algorithm: Optional[str],
        min_spacing: Optional[int],
    ) -> Dict:
        if (layout is None) == (gds_bytes is None):
            raise ValueError("provide exactly one of layout and gds_bytes")
        payload: Dict = {}
        if layout is not None:
            payload["layout"] = layout.to_dict()
        else:
            payload["gds_b64"] = base64.b64encode(gds_bytes).decode("ascii")
        for key, value in (
            ("name", name),
            ("layer", layer),
            ("colors", colors),
            ("algorithm", algorithm),
            ("min_spacing", min_spacing),
        ):
            if value is not None:
                payload[key] = value
        return payload

    def wait_until_healthy(self, timeout: float = 30.0, interval: float = 0.1) -> Dict:
        """Poll ``/healthz`` until the server answers ``ok`` (or time out).

        A 503 along the way is backpressure, not unreachability: when it
        carries a ``Retry-After`` hint the next probe waits that long
        (capped by the remaining deadline) instead of hammering the fixed
        interval — the server asked for the pacing, honor it.
        """
        deadline = time.monotonic() + timeout
        last: Optional[ServiceError] = None
        while time.monotonic() < deadline:
            delay = interval
            try:
                health = self.healthz()
                if health.get("status") == "ok":
                    return health
            except ServiceError as exc:
                last = exc
                if exc.status == 503 and exc.retry_after is not None:
                    delay = max(interval, exc.retry_after)
            time.sleep(max(0.0, min(delay, deadline - time.monotonic())))
        raise ServiceError(0, f"server not healthy after {timeout}s: {last}")
