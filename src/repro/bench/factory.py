"""Shared layout/graph factory used by the test suite and the benchmarks.

Before this module existed, ``tests/conftest.py`` and ``benchmarks/conftest.py``
each rebuilt their own layouts and decomposition graphs; the helpers below are
the single source for both, plus for the runtime test-harness workloads
(repeated-cell layouts for cache tests, seeded random layouts for the
parallel/serial determinism tests).

``circuit_graph`` memoises constructed graphs per (circuit, K, scale) —
graph construction dominates the cost of benchmark setup, and the paper's CPU
column measures color assignment only.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.bench.cells import four_clique_contact_cell, regular_wire_array
from repro.bench.synthetic import random_rectangles
from repro.geometry.layout import Layout
from repro.graph.construction import ConstructionResult

#: Default circuit scale for benchmarks; override with ``REPRO_BENCH_SCALE``.
DEFAULT_BENCH_SCALE = 0.25


def bench_scale() -> float:
    """Circuit scale factor used by the benchmark harness."""
    return float(os.environ.get("REPRO_BENCH_SCALE", str(DEFAULT_BENCH_SCALE)))


_GRAPH_CACHE: Dict[Tuple[str, int, float], ConstructionResult] = {}


def circuit_graph(
    circuit: str, num_colors: int, scale: Optional[float] = None
) -> ConstructionResult:
    """Build (and memoise) the decomposition graph of a benchmark circuit."""
    from repro.experiments.runner import build_graph_for_circuit

    effective_scale = bench_scale() if scale is None else scale
    key = (circuit, num_colors, effective_scale)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = build_graph_for_circuit(
            circuit, num_colors, scale=effective_scale
        )
    return _GRAPH_CACHE[key]


def clear_graph_cache() -> None:
    """Drop every memoised construction (test isolation helper)."""
    _GRAPH_CACHE.clear()


def wire_row_layout(num_wires: int = 3, wire_length: int = 400) -> Layout:
    """Parallel wires at minimum pitch — the simplest conflict-chain layout."""
    layout = regular_wire_array(num_wires=num_wires, wire_length=wire_length)
    layout.name = "wire-row"
    return layout


def repeated_cell_layout(
    copies: int = 4, cell_pitch: int = 1000, layer: str = "contact"
) -> Layout:
    """A row of identical Fig. 1 contact cells, far enough apart to stay
    independent components — the canonical cache-hit workload."""
    layout = Layout(name="repeated-cells")
    for index in range(copies):
        cell = four_clique_contact_cell(origin=(index * cell_pitch, 0))
        # The cell always draws on "contact"; re-emit onto the requested layer.
        for shape in cell.shapes_on_layer("contact"):
            for rect in shape.rects():
                layout.add_rect(rect, layer=layer)
    return layout


def random_layout(count: int = 60, seed: int = 7, region: int = 3000) -> Layout:
    """Seeded random-rectangle layout for determinism/property tests."""
    return random_rectangles(count, region=region, seed=seed, name=f"random-{seed}")
