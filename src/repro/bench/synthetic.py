"""Synthetic Metal1 / contact layout generator.

The DAC'14 evaluation uses the scaled ISCAS Metal1 layers of [4, 8], which are
not redistributable.  This generator produces standard-cell-style layouts with
the same structural ingredients — rows of minimum-pitch horizontal routing
tracks, segmented wires, via/contact clusters, and occasional dense contact
arrays that create native conflicts — so the decomposition graphs exercise the
same code paths (dense K4/K5 neighbourhoods, stitch candidates, large
independent components).  Every generator is seeded and fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.options import MIN_SPACING_NM, MIN_WIDTH_NM
from repro.errors import ConfigurationError
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect


@dataclass
class SyntheticSpec:
    """Parameters of one synthetic standard-cell-style layout.

    Attributes
    ----------
    name:
        Layout name (circuit name for the benchmark suite).
    rows:
        Number of cell rows.
    tracks_per_row:
        Horizontal routing tracks inside one row.
    row_length:
        Row length in nanometres.
    fill_rate:
        Fraction of each track occupied by wire segments (0..1).
    segment_length:
        (min, max) wire segment length in nanometres.
    gap_length:
        (min, max) gap between consecutive segments on a track.
    cluster_rate:
        Expected number of dense contact clusters per row; clusters are the
        main source of native conflicts.
    cluster_pitch:
        Centre-to-centre pitch of the contacts inside a cluster.
    wire_width / spacing:
        Track geometry; defaults follow the paper's 20 nm half-pitch node.
    row_gap:
        Vertical gap between rows (in addition to the track pitch).
    seed:
        RNG seed.
    """

    name: str = "synthetic"
    rows: int = 4
    tracks_per_row: int = 8
    row_length: int = 4000
    fill_rate: float = 0.55
    segment_length: Tuple[int, int] = (160, 600)
    gap_length: Tuple[int, int] = (60, 320)
    cluster_rate: float = 1.0
    cluster_pitch: int = MIN_WIDTH_NM + 2 * MIN_SPACING_NM
    wire_width: int = MIN_WIDTH_NM
    spacing: int = MIN_SPACING_NM
    row_gap: int = 3 * MIN_SPACING_NM
    seed: int = 1

    def validate(self) -> None:
        if self.rows <= 0 or self.tracks_per_row <= 0 or self.row_length <= 0:
            raise ConfigurationError("rows, tracks and row_length must be positive")
        if not 0.0 <= self.fill_rate <= 1.0:
            raise ConfigurationError("fill_rate must lie in [0, 1]")
        if self.segment_length[0] <= 0 or self.segment_length[0] > self.segment_length[1]:
            raise ConfigurationError("segment_length must be a positive (min, max) pair")
        if self.gap_length[0] < 0 or self.gap_length[0] > self.gap_length[1]:
            raise ConfigurationError("gap_length must be a non-negative (min, max) pair")

    def scaled(self, scale: float) -> "SyntheticSpec":
        """Return a copy whose feature count scales roughly by ``scale``.

        Rows and row length each shrink by ``sqrt(scale)`` so the layout keeps
        its aspect ratio and density while the total feature count tracks the
        requested factor.  Used to shrink the benchmark circuits for quick
        runs while keeping their relative sizes.
        """
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        axis = scale**0.5
        return SyntheticSpec(
            name=self.name,
            rows=max(1, int(round(self.rows * axis))),
            tracks_per_row=self.tracks_per_row,
            row_length=max(self.segment_length[1] * 2, int(round(self.row_length * axis))),
            fill_rate=self.fill_rate,
            segment_length=self.segment_length,
            gap_length=self.gap_length,
            cluster_rate=self.cluster_rate,
            cluster_pitch=self.cluster_pitch,
            wire_width=self.wire_width,
            spacing=self.spacing,
            row_gap=self.row_gap,
            seed=self.seed,
        )


def generate_layout(spec: SyntheticSpec, layer: str = "metal1") -> Layout:
    """Generate the layout described by ``spec``.

    Wires and contact clusters all land on ``layer`` (the decomposer operates
    on a single layer, matching the paper's Metal1 experiments).
    """
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    layout = Layout(name=spec.name)

    pitch = spec.wire_width + spec.spacing
    row_height = spec.tracks_per_row * pitch
    for row in range(spec.rows):
        row_y = row * (row_height + spec.row_gap)
        _fill_row(layout, spec, rng, row_y, layer)
        _place_clusters(layout, spec, rng, row_y, row_height, layer)
    return layout


def _fill_row(
    layout: Layout,
    spec: SyntheticSpec,
    rng: np.random.Generator,
    row_y: int,
    layer: str,
) -> None:
    """Place segmented wires on every track of one row."""
    pitch = spec.wire_width + spec.spacing
    for track in range(spec.tracks_per_row):
        y = row_y + track * pitch
        x = int(rng.integers(0, spec.gap_length[1] + 1))
        while x < spec.row_length - spec.segment_length[0]:
            if rng.random() < spec.fill_rate:
                length = int(
                    rng.integers(spec.segment_length[0], spec.segment_length[1] + 1)
                )
                end = min(x + length, spec.row_length)
                if end - x >= spec.wire_width:
                    layout.add_rect(
                        Rect(x, y, end, y + spec.wire_width), layer=layer
                    )
                x = end
            gap = int(rng.integers(spec.gap_length[0], spec.gap_length[1] + 1))
            x += max(gap, spec.spacing)


def _place_clusters(
    layout: Layout,
    spec: SyntheticSpec,
    rng: np.random.Generator,
    row_y: int,
    row_height: int,
    layer: str,
) -> None:
    """Drop dense 2x2 or 2x3 contact clusters into the row.

    A cluster reproduces the Fig. 1 pattern: contacts at a pitch below the
    coloring distance, forming K4 (2x2) or denser cliques (2x3) in the
    decomposition graph — the native-conflict generators of the benchmarks.
    """
    expected = spec.cluster_rate
    count = int(rng.poisson(expected)) if expected > 0 else 0
    size = spec.wire_width
    for _ in range(count):
        columns = 2 if rng.random() < 0.7 else 3
        width_needed = (columns - 1) * spec.cluster_pitch + size
        max_x = spec.row_length - width_needed
        if max_x <= 0:
            continue
        x0 = int(rng.integers(0, max_x + 1))
        y0 = row_y + int(rng.integers(0, max(row_height - spec.cluster_pitch - size, 1)))
        for i in range(2):
            for j in range(columns):
                x = x0 + j * spec.cluster_pitch
                y = y0 + i * spec.cluster_pitch
                layout.add_rect(Rect(x, y, x + size, y + size), layer=layer)


def dense_contact_array(
    rows: int,
    columns: int,
    pitch: int = MIN_WIDTH_NM + 2 * MIN_SPACING_NM,
    size: int = MIN_WIDTH_NM,
    layer: str = "metal1",
    name: str = "contact-array",
) -> Layout:
    """Regular contact array — a worst-case, clique-rich workload."""
    if rows <= 0 or columns <= 0:
        raise ConfigurationError("rows and columns must be positive")
    layout = Layout(name=name)
    for i in range(rows):
        for j in range(columns):
            x = j * pitch
            y = i * pitch
            layout.add_rect(Rect(x, y, x + size, y + size), layer=layer)
    return layout


def random_rectangles(
    count: int,
    region: int = 4000,
    width_range: Tuple[int, int] = (MIN_WIDTH_NM, 4 * MIN_WIDTH_NM),
    seed: int = 7,
    layer: str = "metal1",
    name: str = "random-rects",
) -> Layout:
    """Uniformly scattered rectangles (property-test and fuzzing workload)."""
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    rng = np.random.default_rng(seed)
    layout = Layout(name=name)
    for _ in range(count):
        w = int(rng.integers(width_range[0], width_range[1] + 1))
        h = int(rng.integers(width_range[0], width_range[1] + 1))
        x = int(rng.integers(0, max(region - w, 1)))
        y = int(rng.integers(0, max(region - h, 1)))
        layout.add_rect(Rect(x, y, x + w, y + h), layer=layer)
    return layout
