"""Small hand-crafted layouts and graphs reproducing the paper's figures.

These patterns are used by the unit tests, the examples and the figure-level
reproduction checks:

* :func:`four_clique_contact_cell` — the standard-cell contact pattern of
  Fig. 1 whose decomposition graph contains a 4-clique: a native conflict for
  triple patterning that quadruple patterning resolves.
* :func:`regular_wire_array` — the 1-D regular pattern of Fig. 7 which turns
  into a K5 when ``min_s = 2*s_m + w_m``.
* :func:`figure4_graph`, :func:`figure5_graph`, :func:`figure6_graph` — the
  decomposition graphs drawn in Figs. 4-6 (ordering pitfall, 3-cut rotation,
  GH-tree division).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.options import HALF_PITCH_NM, MIN_SPACING_NM, MIN_WIDTH_NM
from repro.geometry.layout import Layout
from repro.geometry.rect import Rect
from repro.graph.decomposition_graph import DecompositionGraph


def four_clique_contact_cell(
    pitch: int = MIN_WIDTH_NM + 2 * MIN_SPACING_NM,
    contact_size: int = MIN_WIDTH_NM,
    origin: Tuple[int, int] = (0, 0),
) -> Layout:
    """Return the Fig. 1 contact cell: four contacts forming a 4-clique.

    The four contacts sit on the corners of a square whose diagonal spacing is
    still smaller than the quadruple-patterning coloring distance (the default
    pitch of ``w_m + 2*s_m`` = 60 nm keeps the corner-to-corner gap at about
    57 nm < 80 nm), so every pair conflicts.  Triple patterning cannot
    decompose the resulting K4 plus any additional neighbour; quadruple
    patterning colors it without conflicts.
    """
    ox, oy = origin
    layout = Layout(name="four-clique-contacts")
    offsets = [(0, 0), (pitch, 0), (0, pitch), (pitch, pitch)]
    for dx, dy in offsets:
        layout.add_rect(
            Rect(ox + dx, oy + dy, ox + dx + contact_size, oy + dy + contact_size),
            layer="contact",
        )
    return layout


def regular_wire_array(
    num_wires: int = 5,
    wire_length: int = 400,
    wire_width: int = MIN_WIDTH_NM,
    spacing: int = MIN_SPACING_NM,
    layer: str = "metal1",
) -> Layout:
    """Return the Fig. 7 1-D regular wire array.

    ``num_wires`` parallel horizontal wires at minimum pitch.  Fig. 7 uses
    this pattern to show how the conflict neighbourhood of a wire grows with
    the coloring distance: at ``min_s = s_m`` only adjacent tracks conflict,
    while at the quadruple-patterning distance ``2*s_m + 2*w_m`` each wire
    also conflicts with the track two positions away, so dense 2-D layouts
    easily embed K5 / K3,3 and classic planar four-coloring no longer applies.
    """
    layout = Layout(name="regular-wire-array")
    pitch = wire_width + spacing
    for index in range(num_wires):
        y = index * pitch
        layout.add_rect(Rect(0, y, wire_length, y + wire_width), layer=layer)
    return layout


def staircase_wire_pair(
    overlap: int = 100, layer: str = "metal1"
) -> Layout:
    """Two long wires with a stitch-friendly overlap region (stitch demo)."""
    layout = Layout(name="staircase-wires")
    width = MIN_WIDTH_NM
    layout.add_rect(Rect(0, 0, 400, width), layer=layer)
    layout.add_rect(Rect(400 - overlap, 60, 800, 60 + width), layer=layer)
    layout.add_rect(Rect(0, 120, 400, 120 + width), layer=layer)
    return layout


# ---------------------------------------------------------------------------
# Decomposition graphs of the paper's illustrative figures
# ---------------------------------------------------------------------------
def figure4_graph() -> DecompositionGraph:
    """Return the 5-vertex graph of Fig. 4(a).

    Vertices: a=0, b=1, c=2, d=3, e=4.  Vertex ``e`` conflicts with a, b, c
    and d; the outer vertices form a cycle a-b-c-d so that a greedy coloring
    in the order a, b, c, d, e can paint d with the one color that leaves e
    without any legal choice.  Vertex a is additionally color-friendly to d.
    """
    graph = DecompositionGraph.from_edges(
        conflict_edges=[(0, 1), (1, 2), (2, 3), (0, 4), (1, 4), (2, 4), (3, 4)],
        vertices=range(5),
    )
    graph.add_friend_edge(0, 3)
    return graph


def figure5_graph() -> DecompositionGraph:
    """Return the 6-vertex, 3-cut example of Fig. 5(a).

    Component 1 is the triangle {a=0, b=1, c=2}, component 2 the triangle
    {d=3, e=4, f=5}; the 3-cut is {a-d, b-e, c-f}.
    """
    return DecompositionGraph.from_edges(
        conflict_edges=[
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (0, 3),
            (1, 4),
            (2, 5),
        ],
        vertices=range(6),
    )


def figure6_graph() -> DecompositionGraph:
    """Return the 5-vertex graph of Fig. 6(a) used for the GH-tree example.

    Vertices a=0, b=1 form a dense pair connected to a triangle {c=2, d=3}
    and a pendant vertex e=4; the GH-tree of Fig. 6(b) carries weights 3 and 4
    so that 3-cut removal splits the graph into three components
    {a, b}, {c, d} and {e} (Fig. 6(c)).
    """
    return DecompositionGraph.from_edges(
        conflict_edges=[
            # dense pair a-b (two disjoint paths keep their cut at 4)
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            # c-d edge of the second component
            (2, 3),
            # pendant e attached to d by a 3-cut-ish connection
            (2, 4),
            (3, 4),
        ],
        vertices=range(5),
    )
