"""Named benchmark circuits mirroring the paper's test-case suite.

The DAC'14 evaluation runs on the scaled Metal1 layers of fifteen ISCAS-85/89
circuits (C432 ... S15850).  Those layouts cannot be redistributed, so each
circuit name maps to a :class:`~repro.bench.synthetic.SyntheticSpec` whose
size and density are chosen to keep the *relative* ordering of the paper's
suite: the C-series circuits are small (hundreds of features), the S-series
are one to two orders of magnitude larger, and C6288 is the conflict-dense
outlier.  A global ``scale`` factor shrinks every circuit proportionally so
the full Table 1/2 harness stays laptop-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.synthetic import SyntheticSpec, generate_layout
from repro.errors import ConfigurationError
from repro.geometry.layout import Layout

#: Circuits in the order Table 1 lists them.
TABLE1_CIRCUITS = [
    "C432",
    "C499",
    "C880",
    "C1355",
    "C1908",
    "C2670",
    "C3540",
    "C5315",
    "C6288",
    "C7552",
    "S1488",
    "S38417",
    "S35932",
    "S38584",
    "S15850",
]

#: The six densest circuits evaluated for pentuple patterning (Table 2).
TABLE2_CIRCUITS = ["C6288", "C7552", "S38417", "S35932", "S38584", "S15850"]


@dataclass(frozen=True)
class CircuitProfile:
    """Size/density profile of one named benchmark circuit."""

    name: str
    rows: int
    row_length: int
    fill_rate: float
    cluster_rate: float
    seed: int

    def to_spec(self) -> SyntheticSpec:
        return SyntheticSpec(
            name=self.name,
            rows=self.rows,
            row_length=self.row_length,
            fill_rate=self.fill_rate,
            cluster_rate=self.cluster_rate,
            seed=self.seed,
        )


#: Profiles calibrated so that feature counts grow roughly like the paper's
#: suite (C432 smallest, S-series largest, C6288 densest in conflicts).
CIRCUIT_PROFILES: Dict[str, CircuitProfile] = {
    "C432": CircuitProfile("C432", rows=5, row_length=5000, fill_rate=0.50, cluster_rate=0.6, seed=432),
    "C499": CircuitProfile("C499", rows=5, row_length=5600, fill_rate=0.52, cluster_rate=0.6, seed=499),
    "C880": CircuitProfile("C880", rows=6, row_length=5600, fill_rate=0.52, cluster_rate=0.5, seed=880),
    "C1355": CircuitProfile("C1355", rows=6, row_length=6000, fill_rate=0.54, cluster_rate=0.5, seed=1355),
    "C1908": CircuitProfile("C1908", rows=7, row_length=6000, fill_rate=0.54, cluster_rate=0.7, seed=1908),
    "C2670": CircuitProfile("C2670", rows=8, row_length=6400, fill_rate=0.55, cluster_rate=0.6, seed=2670),
    "C3540": CircuitProfile("C3540", rows=9, row_length=6400, fill_rate=0.55, cluster_rate=0.7, seed=3540),
    "C5315": CircuitProfile("C5315", rows=10, row_length=7200, fill_rate=0.56, cluster_rate=0.8, seed=5315),
    "C6288": CircuitProfile("C6288", rows=10, row_length=7200, fill_rate=0.70, cluster_rate=2.0, seed=6288),
    "C7552": CircuitProfile("C7552", rows=11, row_length=7600, fill_rate=0.58, cluster_rate=0.9, seed=7552),
    "S1488": CircuitProfile("S1488", rows=7, row_length=5600, fill_rate=0.52, cluster_rate=0.6, seed=1488),
    "S38417": CircuitProfile("S38417", rows=24, row_length=12000, fill_rate=0.60, cluster_rate=1.2, seed=38417),
    "S35932": CircuitProfile("S35932", rows=28, row_length=13000, fill_rate=0.62, cluster_rate=1.3, seed=35932),
    "S38584": CircuitProfile("S38584", rows=27, row_length=12600, fill_rate=0.61, cluster_rate=1.25, seed=38584),
    "S15850": CircuitProfile("S15850", rows=26, row_length=12200, fill_rate=0.61, cluster_rate=1.25, seed=15850),
}


def circuit_names() -> List[str]:
    """Return the circuit names in Table 1 order."""
    return list(TABLE1_CIRCUITS)


def circuit_spec(name: str, scale: float = 1.0) -> SyntheticSpec:
    """Return the (optionally scaled) generator spec of a named circuit."""
    try:
        profile = CIRCUIT_PROFILES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown circuit {name!r}; known: {', '.join(sorted(CIRCUIT_PROFILES))}"
        ) from exc
    spec = profile.to_spec()
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec


def load_circuit(name: str, scale: float = 1.0) -> Layout:
    """Generate the synthetic layout standing in for circuit ``name``."""
    return generate_layout(circuit_spec(name, scale))
