"""Benchmark workloads: figure cells, synthetic layouts and named circuits."""

from repro.bench.cells import (
    figure4_graph,
    figure5_graph,
    figure6_graph,
    four_clique_contact_cell,
    regular_wire_array,
    staircase_wire_pair,
)
from repro.bench.synthetic import (
    SyntheticSpec,
    dense_contact_array,
    generate_layout,
    random_rectangles,
)
from repro.bench.circuits import (
    CIRCUIT_PROFILES,
    TABLE1_CIRCUITS,
    TABLE2_CIRCUITS,
    circuit_names,
    circuit_spec,
    load_circuit,
)
from repro.bench.factory import (
    bench_scale,
    circuit_graph,
    clear_graph_cache,
    random_layout,
    repeated_cell_layout,
    wire_row_layout,
)

__all__ = [
    "bench_scale",
    "circuit_graph",
    "clear_graph_cache",
    "random_layout",
    "repeated_cell_layout",
    "wire_row_layout",
    "figure4_graph",
    "figure5_graph",
    "figure6_graph",
    "four_clique_contact_cell",
    "regular_wire_array",
    "staircase_wire_pair",
    "SyntheticSpec",
    "generate_layout",
    "dense_contact_array",
    "random_rectangles",
    "CIRCUIT_PROFILES",
    "TABLE1_CIRCUITS",
    "TABLE2_CIRCUITS",
    "circuit_names",
    "circuit_spec",
    "load_circuit",
]
