"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools predates PEP 660 wheel-less editable builds
(``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
