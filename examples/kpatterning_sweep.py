#!/usr/bin/env python3
"""Section 5 scenario: general K-patterning layout decomposition.

Sweeps the number of masks K from 3 to 6 on two workloads (a dense contact
array and the synthetic C7552 circuit) and shows how the unavoidable conflict
count falls as masks are added, while the coloring distance — and with it the
conflict-graph density — grows with K following the paper's technology
assumptions (min_s = 80 nm for K=4, 110 nm for K=5, ...).

Run with:  python examples/kpatterning_sweep.py
"""

from __future__ import annotations

from repro import Decomposer, DecomposerOptions
from repro.bench import dense_contact_array, load_circuit
from repro.graph import build_decomposition_graph


def sweep_fixed_rule() -> None:
    """Fixed conflict rule: more masks monotonically reduce conflicts."""
    layout = dense_contact_array(6, 12)
    print(f"dense contact array: {len(layout)} contacts, min_s fixed at 80 nm")
    print(f"  {'K':>2}  {'conflicts':>9}  {'stitches':>8}  {'cpu (s)':>8}")
    for num_colors in (3, 4, 5, 6):
        options = DecomposerOptions.for_k_patterning(num_colors, "linear")
        options.construction.min_coloring_distance = 80
        result = Decomposer(options).decompose(layout)
        print(
            f"  {num_colors:>2}  {result.solution.conflicts:>9}  "
            f"{result.solution.stitches:>8}  "
            f"{result.solution.color_assignment_seconds:>8.3f}"
        )


def sweep_technology_rule() -> None:
    """Per-K coloring distance: the graph density itself grows with K."""
    layout = load_circuit("C7552", scale=0.4)
    print(f"\nC7552 (synthetic, {len(layout)} features), min_s growing with K")
    print(f"  {'K':>2}  {'min_s':>6}  {'|CE|':>7}  {'conflicts':>9}  {'stitches':>8}")
    for num_colors in (4, 5, 6):
        options = DecomposerOptions.for_k_patterning(num_colors, "linear")
        graph = build_decomposition_graph(
            layout, options=options.construction
        ).graph
        result = Decomposer(options).decompose(layout)
        print(
            f"  {num_colors:>2}"
            f"  {options.construction.min_coloring_distance:>6}"
            f"  {graph.num_conflict_edges:>7}"
            f"  {result.solution.conflicts:>9}"
            f"  {result.solution.stitches:>8}"
        )


def main() -> None:
    sweep_fixed_rule()
    sweep_technology_rule()
    print(
        "\nThe same framework (division + color assignment) covers every K,"
        "\nas claimed in Section 5 of the paper."
    )


if __name__ == "__main__":
    main()
