#!/usr/bin/env python3
"""Observability smoke: a journaled 2-node cluster, traced end to end.

Launches — fully in-process, on ephemeral localhost ports — a 2-node
cluster with the event journal enabled on every process (exactly what
``repro-decompose cluster node --journal DIR`` / ``cluster coordinator
--journal DIR`` run across machines), then:

1. subscribes to the coordinator's live ``GET /watch`` SSE feed,
2. decomposes a repeated-cell layout with a caller-supplied trace id and
   checks the masks are byte-identical to a direct ``Decomposer`` run,
3. fetches the assembled ``GET /trace/<id>`` span tree and checks the
   top-level stage durations fit inside the measured wall time,
4. lints the Prometheus ``/metrics`` payload of the coordinator and of a
   node,
5. fetches the federated ``GET /cluster/metrics`` view, checks it is
   lint-clean, reports every target ``up``, and sums the node request
   counters exactly,
6. folds the coordinator journal into per-client usage rollups twice and
   checks the checkpoints are byte-identical,
7. replays every journal directory and verifies the lifecycle invariants.

Run with:  python examples/obs_smoke.py [JOURNAL_ROOT]

When JOURNAL_ROOT is given the journals are left on disk so a follow-up
``python -m repro.obs.replay --journal JOURNAL_ROOT/coordinator --check``
can re-verify them out of process (CI does exactly that).
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.factory import repeated_cell_layout
from repro.cluster import ClusterClient, CoordinatorConfig, CoordinatorThread
from repro.core.decomposer import Decomposer
from repro.obs.journal import read_journal
from repro.obs.replay import check_events
from repro.obs.usage import fold_usage, render_checkpoint
from repro.service import ServerConfig, ServerThread, ServiceClient
from repro.service.metrics import lint_metrics_text, parse_metrics_text
from repro.service.protocol import build_options, canonical_json, result_to_payload

TRACE_ID = "0b5e17ab1e57ace5"


def main(journal_root: Path) -> None:
    layout = repeated_cell_layout(copies=6)
    direct = Decomposer(build_options(4, "linear")).decompose(
        layout, layer=layout.layers()[0]
    )
    expected = canonical_json(
        result_to_payload("cells", layout.layers()[0], direct)
    )

    nodes = [
        ServerThread(
            ServerConfig(
                port=0,
                workers=1,
                force_inline_pool=True,
                journal_dir=str(journal_root / f"node{i}"),
            )
        )
        for i in range(2)
    ]
    coordinator = None
    try:
        peers = ["%s:%d" % node.start() for node in nodes]
        coordinator = CoordinatorThread(
            CoordinatorConfig(
                port=0,
                peers=peers,
                probe_interval=60.0,
                journal_dir=str(journal_root / "coordinator"),
            )
        )
        address = coordinator.start()
        client = ClusterClient(*address)
        client.wait_until_healthy()
        print(f"cluster up: coordinator {address[0]}:{address[1]}, "
              f"nodes {', '.join(peers)}")

        # 1. live watch feed on its own connection/thread.
        watched = []

        def watch() -> None:
            stream = ServiceClient(*address, timeout=30.0)
            for name, payload in stream.watch_events(max_events=3):
                watched.append((name, payload.get("trace_id")))

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        # Wait for the subscription to register so the request's events
        # cannot slip past an unconnected watcher.
        deadline = time.monotonic() + 10.0
        while "repro_watch_subscribers 1" not in client.metrics_text():
            assert time.monotonic() < deadline, "watcher never subscribed"
            time.sleep(0.01)

        # 2. traced request, byte-identical to direct.
        served = client.decompose(
            layout, name="cells", algorithm="linear", trace_id=TRACE_ID
        )
        assert canonical_json(served) == expected, "cluster diverged from direct"
        assert client.last_trace_id == TRACE_ID
        print(f"served byte-identical to direct under trace {TRACE_ID}")

        # 3. the assembled span tree.
        trace = client.trace(TRACE_ID)
        assert trace["status"] == "completed", trace["status"]
        top = {span["stage"]: span["seconds"] for span in trace["spans"]}
        total = sum(top.values())
        assert 0.0 < total <= trace["wall_seconds"], (total, trace["wall_seconds"])
        print(
            "trace tree: "
            + ", ".join(f"{stage} {seconds:.6f}s" for stage, seconds in top.items())
            + f"; wall {trace['wall_seconds']:.6f}s"
        )

        watcher.join(timeout=30.0)
        assert not watcher.is_alive(), "watch stream never delivered"
        assert all(trace_id == TRACE_ID for _, trace_id in watched), watched
        print(f"watched live over SSE: {[name for name, _ in watched]}")

        # 4. lint-clean metrics on both roles.
        for label, metrics_client in (
            ("coordinator", client),
            ("node", ServiceClient(*nodes[0].address)),
        ):
            text = metrics_client.metrics_text()
            problems = lint_metrics_text(text)
            assert problems == [], (label, problems)
            assert "repro_stage_duration_seconds" in text
            assert "repro_build_info" in text
        print("metrics lint clean on coordinator and node")

        # 5. the federated fleet view: lint-clean, every target up, node
        # counters summed exactly.
        federated_text = client.metrics_text("/cluster/metrics?refresh=1")
        problems = lint_metrics_text(federated_text)
        assert problems == [], problems
        federated = parse_metrics_text(federated_text)
        node_scrapes = [
            parse_metrics_text(ServiceClient(*node.address).metrics_text())
            for node in nodes
        ]
        for node_id in ["coordinator"] + peers:
            assert federated.value("up", {"node": node_id}) == 1, node_id
        served_sample = ("repro_server_requests_total", {"result": "served"})
        served_sum = sum(s.value(*served_sample) for s in node_scrapes)
        assert federated.value(*served_sample) == served_sum, (
            federated.value(*served_sample),
            served_sum,
        )
        assert "repro_slo_error_burn_rate" in federated_text
        assert "repro_process_uptime_seconds" in federated_text
        print(
            f"federated /cluster/metrics lint clean; up=1 x{1 + len(peers)}; "
            f"served sum exact ({int(served_sum)})"
        )
    finally:
        if coordinator is not None:
            coordinator.stop()
        for node in nodes:
            node.stop()

    # 6. deterministic usage metering over the coordinator journal.
    coordinator_events = read_journal(str(journal_root / "coordinator"))
    first = render_checkpoint(fold_usage(coordinator_events))
    second = render_checkpoint(fold_usage(list(coordinator_events)))
    assert first == second, "usage checkpoint is not byte-identical"
    assert '"layouts_total":1' in first, first
    print(f"usage fold byte-identical ({len(first.splitlines())} lines)")

    # 7. replay every journal with the invariant checker.
    for directory in sorted(journal_root.iterdir()):
        events = read_journal(str(directory))
        problems = check_events(events)
        assert problems == [], (directory, problems)
        print(f"replay OK: {directory.name} ({len(events)} events)")
    print("observability smoke passed")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        root = Path(sys.argv[1])
        root.mkdir(parents=True, exist_ok=True)
        main(root)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as tmp:
            main(Path(tmp))
