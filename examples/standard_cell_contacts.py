#!/usr/bin/env python3
"""Fig. 1 scenario: why quadruple patterning — standard-cell contact cliques.

The paper motivates QPL with the contact pattern of Fig. 1: inside standard
cells, contact layouts form 4-cliques in the decomposition graph that triple
patterning cannot color without a conflict, while a fourth mask resolves them
"for free".  This example reproduces that comparison on the single cell and on
a full row of cells, using the exact backtracking colorer so the conflict
counts are optimal for both mask counts.

Run with:  python examples/standard_cell_contacts.py
"""

from __future__ import annotations

from repro import Decomposer, DecomposerOptions, Layout
from repro.bench import dense_contact_array, four_clique_contact_cell


def decompose(layout: Layout, layer: str, num_colors: int):
    """Decompose with K masks under the QP conflict rule (min_s = 80 nm)."""
    options = DecomposerOptions.for_k_patterning(num_colors, algorithm="backtrack")
    options.construction.min_coloring_distance = 80
    return Decomposer(options).decompose(layout, layer=layer)


def cell_row(num_cells: int) -> Layout:
    """A row of Fig. 1 contact cells at a realistic cell pitch."""
    layout = Layout(name="contact-cell-row")
    for index in range(num_cells):
        cell = four_clique_contact_cell(origin=(index * 200, 0))
        for shape in cell:
            layout.add_polygon(shape.polygon, layer="contact")
    return layout


def report(title: str, layout: Layout, layer: str) -> None:
    print(f"\n== {title} ({len(layout)} contacts) ==")
    for num_colors in (3, 4, 5):
        result = decompose(layout, layer, num_colors)
        label = {3: "triple ", 4: "quadruple", 5: "pentuple "}[num_colors]
        print(
            f"  {label} patterning: conflicts={result.solution.conflicts:3d}  "
            f"stitches={result.solution.stitches:3d}  "
            f"masks used={len(set(result.solution.coloring.values()))}"
        )


def main() -> None:
    report("single standard-cell contact cluster (Fig. 1)",
           four_clique_contact_cell(), "contact")
    report("row of 8 contact cells", cell_row(8), "contact")
    report("dense 6x10 contact array (worst case)",
           dense_contact_array(6, 10), "metal1")
    print(
        "\nTriple patterning keeps at least one native conflict per 4-clique;"
        "\nquadruple patterning removes them all, matching the Fig. 1 claim."
    )


if __name__ == "__main__":
    main()
