#!/usr/bin/env python3
"""Three-node cluster walkthrough: sharding, affinity, failover.

Launches — fully in-process, on ephemeral localhost ports — exactly the
topology ``repro-decompose cluster`` runs across machines:

* three decomposition-server *nodes* (each owning a hash range of the
  component-cache keyspace),
* one *coordinator* routing every divided component to its owner node over
  a consistent-hash ring and keep-alive connections,

then acts as a client:

1. decomposes a repeated-standard-cell layout through the coordinator and
   checks the masks are byte-identical to a direct ``Decomposer`` run,
2. decomposes it again — every component routes to the same owner node and
   is answered from its component cache (cache affinity),
3. kills the node that owned the components mid-flight and decomposes a
   third time: the ring rebalances, components re-route, output stays
   byte-identical,
4. prints the coordinator's ``/stats`` and Prometheus ``/metrics`` evidence.

Run with:  python examples/cluster_demo.py

Against real daemons the client half is identical — start nodes with
``repro-decompose cluster node --port 8001 ...`` and the front end with
``repro-decompose cluster coordinator --peers hostA:8001,hostB:8001,...``.
"""

from __future__ import annotations

from repro.bench.factory import repeated_cell_layout
from repro.cluster import ClusterClient, CoordinatorConfig, CoordinatorThread
from repro.core.decomposer import Decomposer
from repro.service import ServerConfig, ServerThread
from repro.service.protocol import build_options, canonical_json, result_to_payload


def main() -> None:
    layout = repeated_cell_layout(copies=6)
    layer = layout.layers()[0]
    direct = Decomposer(build_options(4, "linear")).decompose(layout, layer=layer)
    expected = canonical_json(result_to_payload("cells", layer, direct))
    print(f"input: {len(layout)} features; direct run: "
          f"conflicts={direct.solution.conflicts} stitches={direct.solution.stitches}")

    nodes = [
        ServerThread(ServerConfig(port=0, workers=1, force_inline_pool=True))
        for _ in range(3)
    ]
    peers = []
    try:
        for node in nodes:
            host, port = node.start()
            peers.append(f"{host}:{port}")
        print(f"nodes up: {', '.join(peers)}")
        coordinator = CoordinatorThread(
            CoordinatorConfig(port=0, peers=peers, probe_interval=60.0)
        )
        try:
            client = ClusterClient(*coordinator.start())
            client.wait_until_healthy()
            print(f"coordinator up at http://{client.host}:{client.port} "
                  f"(ring: {client.ring()['virtual_nodes']} vnodes/node)")

            cold = client.decompose(layout, name="cells", algorithm="linear")
            print(f"cold solve byte-identical to direct: "
                  f"{canonical_json(cold) == expected}")

            warm = client.decompose(layout, name="cells", algorithm="linear")
            stats = client.stats()
            print(f"warm solve byte-identical: {canonical_json(warm) == expected}; "
                  f"affinity hits {stats['coordinator']['component_cache_hits']}"
                  f"/{stats['coordinator']['components_routed']} routed")
            routed = {n: s["routed"] for n, s in stats["nodes"].items()}
            print(f"per-node routing (hash ownership): {routed}")

            victim = max(routed, key=routed.get)
            nodes[peers.index(victim)].stop()
            print(f"killed node {victim} — re-requesting through the cluster")
            after = client.decompose(layout, name="cells", algorithm="linear")
            stats = client.stats()
            print(f"after node death byte-identical: "
                  f"{canonical_json(after) == expected}; "
                  f"reroutes={stats['coordinator']['reroutes']}, "
                  f"alive={stats['membership']['alive']}/3")

            interesting = (
                "repro_coordinator_components_routed_total",
                "repro_coordinator_component_cache_hits_total",
                "repro_coordinator_reroutes_total",
                "repro_coordinator_nodes",
            )
            print("coordinator /metrics extract:")
            for line in client.metrics_text().splitlines():
                if line.startswith(interesting):
                    print(f"  {line}")
        finally:
            coordinator.stop()
    finally:
        for node in nodes:
            node.stop()
    print("cluster drained cleanly")


if __name__ == "__main__":
    main()
