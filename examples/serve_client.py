#!/usr/bin/env python3
"""Serve-and-request walkthrough for the decomposition service.

Starts a :class:`DecompositionServer` on an ephemeral port (in-process, on a
background thread — exactly what ``repro-decompose serve`` runs as a
daemon), points it at a SQLite component cache, and then acts as a client:

1. waits for ``/healthz``,
2. decomposes a repeated-standard-cell layout (cold cache),
3. decomposes it again (every component replayed from SQLite),
4. prints ``/stats`` showing the cache doing its job,
5. drains the server gracefully.

Run with:  python examples/serve_client.py

Against a standalone daemon the client half is identical — start
``repro-decompose serve --port 8000 --cache-db cells.db`` (or
``python -m repro.service ...``) and point :class:`ServiceClient` at it.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.bench.factory import repeated_cell_layout
from repro.geometry.layout import Layout
from repro.service import ServerConfig, ServerThread, ServiceClient


def main() -> None:
    layout = repeated_cell_layout(copies=6)
    print(f"input layout: {len(layout)} features on {layout.layers()}")

    cache_db = Path(tempfile.mkdtemp(prefix="repro-serve-")) / "cells.db"
    config = ServerConfig(port=0, workers=0, cache_db=str(cache_db))

    with ServerThread(config) as (host, port):
        client = ServiceClient(host, port)
        health = client.wait_until_healthy()
        print(f"server up at http://{host}:{port} "
              f"(pool mode={health['mode']}, workers={health['workers']})")

        cold = client.decompose(layout, name="cells", algorithm="linear")
        print(f"cold solve: conflicts={cold['conflicts']} "
              f"stitches={cold['stitches']} in {cold['seconds']:.3f}s")

        warm = client.decompose(layout, name="cells", algorithm="linear")
        print(f"warm solve: conflicts={warm['conflicts']} "
              f"stitches={warm['stitches']} in {warm['seconds']:.3f}s")

        masks = Layout.from_dict(warm["masks"])
        print(f"served masks: {len(masks)} fragments on layers {masks.layers()}")

        cache = client.stats()["cache"]
        print(f"cache @ {cache['path']}: {cache['hits']} hits / "
              f"{cache['misses']} misses, {cache['entries']} entries "
              f"(restarting the server with the same --cache-db keeps them)")
    print("server drained cleanly")


if __name__ == "__main__":
    main()
