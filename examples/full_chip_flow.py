#!/usr/bin/env python3
"""Full-chip flow: generate a benchmark circuit, compare all four algorithms.

Reproduces one row of Table 1 end to end:

1. generate the synthetic stand-in for an ISCAS circuit,
2. build the decomposition graph once,
3. run ILP (budgeted), SDP+Backtrack, SDP+Greedy and the linear assignment on
   the same graph with all graph-division techniques enabled,
4. print the conflict/stitch/CPU comparison and write the best solution's
   masks to GDSII.

Run with:  python examples/full_chip_flow.py [CIRCUIT] [SCALE]
(default: C1908 at scale 0.5)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench import load_circuit
from repro.core import DecomposerOptions, Decomposer
from repro.experiments import run_algorithm
from repro.graph import build_decomposition_graph
from repro.io import write_gds


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "C1908"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    layout = load_circuit(circuit, scale=scale)
    options = DecomposerOptions.for_quadruple_patterning()
    construction = build_decomposition_graph(layout, options=options.construction)
    graph = construction.graph
    print(
        f"{circuit} (scale {scale}): {len(layout)} features -> "
        f"{graph.num_vertices} vertices, {graph.num_conflict_edges} conflict edges, "
        f"{graph.num_stitch_edges} stitch edges"
    )

    print(f"\n  {'algorithm':>14}  {'cn#':>5}  {'st#':>5}  {'CPU(s)':>8}")
    rows = []
    for algorithm in ["ilp", "sdp-backtrack", "sdp-greedy", "linear"]:
        row = run_algorithm(
            graph, algorithm, 4, circuit=circuit, ilp_time_limit=20.0
        )
        rows.append(row)
        if row.is_valid:
            print(
                f"  {algorithm:>14}  {row.conflicts:>5}  {row.stitches:>5}  "
                f"{row.seconds:>8.3f}"
            )
        else:
            print(f"  {algorithm:>14}  {'N/A':>5}  {'N/A':>5}  {'> budget':>8}")

    # Write the masks of the best valid run (fewest conflicts, then stitches).
    best = min(
        (r for r in rows if r.is_valid), key=lambda r: (r.conflicts, r.stitches)
    )
    result = Decomposer(options.with_algorithm(best.algorithm)).decompose(layout)
    out = Path(__file__).resolve().parent / f"{circuit.lower()}_masks.gds"
    write_gds(result.to_mask_layout(), out)
    print(f"\nbest algorithm: {best.algorithm}; masks written to {out}")


if __name__ == "__main__":
    main()
