#!/usr/bin/env python3
"""Quickstart: decompose a small Metal1 layout into four masks.

Builds a tiny layout by hand (a few routing tracks plus a dense contact
cluster), runs the quadruple-patterning decomposer with the linear color
assignment, prints the quality metrics and writes the resulting masks to both
JSON and GDSII next to this script.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Decomposer, DecomposerOptions, Layout, Rect, decomposition_to_svg
from repro.io import write_gds, write_json


def build_layout() -> Layout:
    """A hand-made layout: 4 routing tracks and a 2x2 contact cluster."""
    layout = Layout(name="quickstart")
    # Four horizontal wires at minimum pitch (20 nm width, 20 nm spacing).
    for track in range(4):
        y = track * 40
        layout.add_rect(Rect(0, y, 600, y + 20), layer="metal1")
    # A dense contact cluster to the right: every pair is within the
    # quadruple-patterning coloring distance, so it needs all four masks.
    for dx, dy in [(0, 0), (60, 0), (0, 60), (60, 60)]:
        layout.add_rect(Rect(700 + dx, 40 + dy, 720 + dx, 60 + dy), layer="metal1")
    return layout


def main() -> None:
    layout = build_layout()
    print(f"input layout: {len(layout)} features on {layout.layers()}")

    options = DecomposerOptions.for_quadruple_patterning(algorithm="linear")
    result = Decomposer(options).decompose(layout, layer="metal1")

    graph = result.construction.graph
    print(
        f"decomposition graph: {graph.num_vertices} vertices, "
        f"{graph.num_conflict_edges} conflict edges, "
        f"{graph.num_stitch_edges} stitch edges"
    )
    print(result.solution.summary())
    print(f"fragments per mask: {result.mask_counts()}")

    out_dir = Path(__file__).resolve().parent
    masks = result.to_mask_layout()
    write_json(masks, out_dir / "quickstart_masks.json")
    write_gds(masks, out_dir / "quickstart_masks.gds")
    decomposition_to_svg(result, out_dir / "quickstart_masks.svg")
    print(f"masks written to {out_dir / 'quickstart_masks'}.json / .gds / .svg")


if __name__ == "__main__":
    main()
