"""Benchmark: process-level scaling of the component scheduler.

Measures ``divide_and_color`` throughput on one large synthetic layout when
the divided components are colored by 1, 2 and 4 worker processes (the
``repro.runtime`` scheduler).  Quality metrics are attached to
``extra_info`` like the other bench harnesses, and a standalone run

    python benchmarks/bench_parallel_scaling.py

records a JSON speedup artifact at ``benchmarks/artifacts/parallel_scaling.json``
(workers -> seconds, speedup vs serial, plus the invariant conflict/stitch
numbers proving the parallel runs solved the identical problem).

Speedup saturates at ``min(workers, cpu_count)``: on a single-core runner
multi-worker timings are pure scheduling overhead, so the standalone run
skips them entirely and records ``"speedup_measurable": false`` (plus the
serial baseline) instead of misleading overhead-only numbers.  Re-run on a
multi-core box to record the real curve.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench.synthetic import SyntheticSpec, generate_layout
from repro.core.evaluation import count_conflicts, count_stitches
from repro.core.options import AlgorithmOptions, DivisionOptions
from repro.core.options import DecomposerOptions
from repro.graph.construction import build_decomposition_graph
from repro.runtime import ComponentScheduler

WORKER_COUNTS = [1, 2, 4]
ALGORITHM = "sdp-backtrack"
NUM_COLORS = 4

#: Large synthetic layout: many rows of segmented wires and contact clusters
#: produce hundreds of independent components with a heavy tail.
LARGE_SPEC = SyntheticSpec(
    name="scaling-large",
    rows=12,
    tracks_per_row=8,
    row_length=9000,
    fill_rate=0.6,
    cluster_rate=1.5,
    seed=97,
)

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "parallel_scaling.json"


def _build_graph():
    layout = generate_layout(LARGE_SPEC)
    options = DecomposerOptions.for_quadruple_patterning(ALGORITHM)
    construction = build_decomposition_graph(
        layout, layer="metal1", options=options.construction
    )
    return construction.graph


def _color_with_workers(graph, workers):
    scheduler = ComponentScheduler(
        ALGORITHM,
        NUM_COLORS,
        AlgorithmOptions(),
        DivisionOptions(),
        workers=workers,
    )
    try:
        return scheduler.run(graph)
    finally:
        scheduler.close()


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_scaling(benchmark, workers):
    """One (workers) cell of the scaling curve."""
    graph = _build_graph()
    benchmark.group = "parallel-scaling"
    outcome = benchmark.pedantic(
        _color_with_workers, args=(graph, workers), rounds=1, iterations=1
    )
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["conflicts"] = count_conflicts(graph, outcome.coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, outcome.coloring)
    benchmark.extra_info["vertices"] = graph.num_vertices
    benchmark.extra_info["parallel_components"] = outcome.parallel_components
    benchmark.extra_info["pool_fallback"] = outcome.pool_fallback


def record_artifact(path: Path = ARTIFACT_PATH) -> dict:
    """Run the scaling sweep once and write the JSON speedup artifact.

    On a 1-CPU runner only the serial baseline is timed: multi-worker runs
    there measure pickling/scheduling overhead, not speedup, and a reader
    skimming the artifact would mistake them for a (terrible) scaling curve.
    The artifact says so explicitly via ``speedup_measurable``.
    """
    cpu_count = os.cpu_count() or 1
    speedup_measurable = cpu_count > 1
    worker_counts = WORKER_COUNTS if speedup_measurable else [1]
    if not speedup_measurable:
        print(
            "bench_parallel_scaling: only 1 CPU visible — skipping multi-worker "
            "timings (they would record scheduling overhead, not speedup); "
            "recording the serial baseline with speedup_measurable=false"
        )
    graph = _build_graph()
    runs = []
    serial_seconds = None
    for workers in worker_counts:
        start = time.perf_counter()
        outcome = _color_with_workers(graph, workers)
        elapsed = time.perf_counter() - start
        if workers == 1:
            serial_seconds = elapsed
        runs.append(
            {
                "workers": workers,
                "seconds": round(elapsed, 4),
                "speedup": round(serial_seconds / elapsed, 3) if serial_seconds else None,
                "conflicts": count_conflicts(graph, outcome.coloring),
                "stitches": count_stitches(graph, outcome.coloring),
                "parallel_components": outcome.parallel_components,
                "serial_components": outcome.serial_components,
                "pool_fallback": outcome.pool_fallback,
            }
        )
    payload = {
        "benchmark": "parallel_scaling",
        "algorithm": ALGORITHM,
        "num_colors": NUM_COLORS,
        "cpu_count": cpu_count,
        "speedup_measurable": speedup_measurable,
        "layout": LARGE_SPEC.name,
        "vertices": graph.num_vertices,
        "conflict_edges": graph.num_conflict_edges,
        "stitch_edges": graph.num_stitch_edges,
        "runs": runs,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    result = record_artifact()
    for run in result["runs"]:
        print(
            f"workers={run['workers']}: {run['seconds']:.3f}s "
            f"speedup={run['speedup']}x conflicts={run['conflicts']} "
            f"stitches={run['stitches']}"
        )
    print(f"artifact written to {ARTIFACT_PATH}")
