"""Benchmark: multi-node scaling and cache affinity of the cluster.

Launches an in-process cluster (N node servers + one coordinator, all on
ephemeral localhost ports — the same topology ``repro-decompose cluster``
runs across machines) and pushes a standard-cell-heavy workload through the
coordinator for N ∈ {1, 2, 3} nodes, recording:

* cold-pass wall time and throughput (layouts/s, components routed/s);
* the warm-pass **cache-affinity hit rate** — the fraction of routed
  components the owner node answered from its component cache, which the
  consistent-hash routing should drive to 1.0 on a repeated workload;
* **request amplification** — node HTTP requests per routed component
  (``requests_per_component``) and the per-layout maximum, which the
  ``POST /components`` micro-batching should hold at ≤ the number of
  owning nodes per layout instead of one request per component.

A standalone run

    python benchmarks/bench_cluster_scaling.py

writes ``benchmarks/artifacts/cluster_scaling.json``.

Caveat recorded in the artifact (PR 1 convention): on a single-CPU runner —
and, more generally, whenever all nodes share one host — node counts cannot
speed up the *solve* side, so ``scaling_measurable`` is ``false`` and the
numbers measure routing/transport overhead plus affinity, not speedup.
Re-run with nodes on separate machines (or at least separate cores with
process pools) to record a real scaling curve.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.bench.factory import repeated_cell_layout, wire_row_layout
from repro.bench.synthetic import SyntheticSpec, generate_layout
from repro.cluster import ClusterClient, CoordinatorConfig, CoordinatorThread
from repro.geometry.layout import Layout
from repro.service import ServerConfig, ServerThread

NODE_COUNTS = [1, 2, 3]
ALGORITHM = "linear"

#: A mixed workload: repeated standard cells (cache-friendly), wire rows and
#: two synthetic circuits (many distinct components).
def build_workload() -> List[Tuple[str, Layout]]:
    workload: List[Tuple[str, Layout]] = [
        ("cells-4", repeated_cell_layout(copies=4)),
        ("cells-8", repeated_cell_layout(copies=8)),
        ("wires-6", wire_row_layout(num_wires=6, wire_length=900)),
    ]
    for seed in (11, 23):
        spec = SyntheticSpec(
            name=f"synthetic-{seed}",
            rows=4,
            tracks_per_row=4,
            row_length=3000,
            fill_rate=0.6,
            cluster_rate=1.0,
            seed=seed,
        )
        workload.append((spec.name, generate_layout(spec)))
    return workload


ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "cluster_scaling.json"


def _run_cluster(num_nodes: int, workload: List[Tuple[str, Layout]]) -> Dict:
    """Measure one cluster size: cold pass, warm pass, affinity, teardown."""
    nodes = [
        ServerThread(ServerConfig(port=0, workers=1, force_inline_pool=True))
        for _ in range(num_nodes)
    ]
    peers = []
    try:
        for node in nodes:
            host, port = node.start()
            peers.append(f"{host}:{port}")
        coordinator = CoordinatorThread(
            CoordinatorConfig(port=0, peers=peers, probe_interval=60.0, queue_limit=64)
        )
        try:
            client = ClusterClient(*coordinator.start())
            client.wait_until_healthy()
            passes = {}
            counters = {}
            for pass_name in ("cold", "warm"):
                before = client.stats()["coordinator"]
                start = time.perf_counter()
                for name, layout in workload:
                    client.decompose(layout, name=name, algorithm=ALGORITHM)
                passes[pass_name] = time.perf_counter() - start
                after = client.stats()["coordinator"]
                counters[pass_name] = {
                    "routed": after["components_routed"] - before["components_routed"],
                    "hits": after["component_cache_hits"]
                    - before["component_cache_hits"],
                }
            # Untimed instrumentation pass: per-layout request amplification.
            # Kept out of the timed passes (the bracketing /stats round trips
            # would pollute the throughput numbers); amplification does not
            # depend on cache warmth, so sampling after the warm pass is fair.
            max_requests_per_layout = 0
            for name, layout in workload:
                layout_before = client.stats()["coordinator"]["node_requests"]
                client.decompose(layout, name=name, algorithm=ALGORITHM)
                layout_requests = (
                    client.stats()["coordinator"]["node_requests"] - layout_before
                )
                max_requests_per_layout = max(
                    max_requests_per_layout, layout_requests
                )
            stats = client.stats()
            coord = stats["coordinator"]
            routed_per_node = {
                node_id: state["routed"] for node_id, state in stats["nodes"].items()
            }
            warm = counters["warm"]
            return {
                "nodes": num_nodes,
                "cold_seconds": round(passes["cold"], 4),
                "warm_seconds": round(passes["warm"], 4),
                "layouts_per_second_cold": round(len(workload) / passes["cold"], 3),
                "layouts_per_second_warm": round(len(workload) / passes["warm"], 3),
                "components_routed": coord["components_routed"],
                "component_cache_hits": coord["component_cache_hits"],
                # Every warm-pass component re-routes to the node that cached
                # it on the cold pass, so this rate should be 1.0.
                "warm_affinity_hit_rate": round(warm["hits"] / warm["routed"], 3)
                if warm["routed"]
                else 0.0,
                "reroutes": coord["reroutes"],
                "routed_per_node": routed_per_node,
                # Micro-batching: node round trips per routed component
                # (1.0 would mean no batching at all) and the worst layout's
                # request count, which should stay ≤ the node count.
                "node_requests": coord["node_requests"],
                "requests_per_component": round(
                    coord["node_requests"] / coord["components_routed"], 4
                )
                if coord["components_routed"]
                else 0.0,
                "max_node_requests_per_layout": max_requests_per_layout,
            }
        finally:
            coordinator.stop()
    finally:
        for node in nodes:
            node.stop()


def record_artifact(path: Path = ARTIFACT_PATH) -> dict:
    """Run the scaling sweep once and write the JSON artifact."""
    cpu_count = os.cpu_count() or 1
    scaling_measurable = cpu_count > 1
    note = None
    if not scaling_measurable:
        note = (
            "1 CPU visible: all in-process nodes share one core, so node "
            "counts measure routing/transport overhead and cache affinity, "
            "not solve speedup; re-run with nodes on separate cores/machines"
        )
        print(f"bench_cluster_scaling: {note}")
    workload = build_workload()
    runs = [_run_cluster(num_nodes, workload) for num_nodes in NODE_COUNTS]
    payload = {
        "benchmark": "cluster_scaling",
        "algorithm": ALGORITHM,
        "cpu_count": cpu_count,
        "scaling_measurable": scaling_measurable,
        "note": note,
        "workload_layouts": len(workload),
        "workload_shapes": sum(len(layout) for _, layout in workload),
        "runs": runs,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    result = record_artifact()
    for run in result["runs"]:
        print(
            f"nodes={run['nodes']}: cold={run['cold_seconds']:.3f}s "
            f"warm={run['warm_seconds']:.3f}s "
            f"({run['layouts_per_second_warm']:.1f} layouts/s warm) "
            f"affinity={run['warm_affinity_hit_rate']:.0%} "
            f"req/component={run['requests_per_component']:.3f} "
            f"max req/layout={run['max_node_requests_per_layout']} "
            f"routed={run['routed_per_node']}"
        )
    print(f"artifact written to {ARTIFACT_PATH}")
