"""Ablation benchmark: the linear color assignment's design choices.

Algorithm 2 owes its quality to three ingredients on top of plain greedy
coloring: color-friendly rules (Definition 2), peer selection over three
vertex orders, and greedy post-refinement.  This benchmark switches each off
on the densest circuit and records the conflict/stitch cost, quantifying the
Fig. 4 discussion.
"""

from __future__ import annotations

import pytest

from repro.core.division import divide_and_color
from repro.core.evaluation import count_conflicts, count_stitches
from repro.core.greedy_coloring import GreedyColoring
from repro.core.linear_coloring import LinearColoring
from repro.core.options import AlgorithmOptions

CIRCUIT = "C6288"


def _options(**flags) -> AlgorithmOptions:
    options = AlgorithmOptions()
    for key, value in flags.items():
        setattr(options, key, value)
    return options


VARIANTS = {
    "full": _options(),
    "no-color-friendly": _options(use_color_friendly=False),
    "no-peer-selection": _options(use_peer_selection=False),
    "no-post-refinement": _options(use_post_refinement=False),
    "bare": _options(
        use_color_friendly=False, use_peer_selection=False, use_post_refinement=False
    ),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_linear_coloring_ablation(benchmark, graph_for, variant):
    benchmark.group = "ordering-ablation"
    graph = graph_for(CIRCUIT, 4).graph
    options = VARIANTS[variant]

    def job():
        return divide_and_color(graph, LinearColoring(4, options))

    coloring = benchmark.pedantic(job, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)


def test_plain_greedy_reference(benchmark, graph_for):
    """Plain greedy coloring as the lower bound of the ablation."""
    benchmark.group = "ordering-ablation"
    graph = graph_for(CIRCUIT, 4).graph

    coloring = benchmark.pedantic(
        lambda: divide_and_color(graph, GreedyColoring(4)), rounds=1, iterations=1
    )
    benchmark.extra_info["variant"] = "plain-greedy"
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)
