"""Benchmark: per-component solve speed of the flat-array kernels.

The solve-kernels PR moved the three per-component solvers onto the packed
:class:`~repro.graph.flat.FlatGraph` arrays (CSR adjacency, flat cost
counters, optional compiled C core).  This harness measures each solver on
the Table 1 circuits against the dict-walking reference implementations and
records the speedups:

* **greedy**    — ``GreedyColoring`` over every component: reference vs the
  packed-array python kernel vs the compiled walk;
* **linear**    — ``LinearColoring`` (peel / peer selection / refinement /
  reinsertion) over every component, same three modes;
* **backtrack** — ``search_merged_graph`` vs the packed kernel on the merged
  graphs of the small components (the exact search is exponential, so the
  leg is capped at ``BACKTRACK_MAX_NODES`` merged nodes — the cap and how
  many components it skipped are recorded in the artifact, never silent).

Every timed call is parity-checked against the reference coloring — the
benchmark refuses to report a speedup for a kernel that changed the output.

Run standalone to (re)record ``benchmarks/artifacts/solve_kernels.json``::

    python benchmarks/bench_solve_kernels.py           # full Table 1 suite
    python benchmarks/bench_solve_kernels.py --quick   # CI smoke: 2 circuits

Timings are best-of over repeated sweeps of all components of each circuit,
divided by the component count — per-component microseconds.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.factory import circuit_graph
from repro.core.backtrack import search_merged_graph
from repro.core.greedy_coloring import GreedyColoring
from repro.core.kernels import set_kernel_mode
from repro.core.kernels.backtrack_kernel import backtrack_search
from repro.core.kernels.ccore import compiled_core
from repro.core.linear_coloring import LinearColoring
from repro.core.options import AlgorithmOptions
from repro.graph.components import connected_components
from repro.graph.simplify import build_merged_graph

QUICK_CIRCUITS = ["C432", "C6288"]
FULL_CIRCUITS = [
    "C432", "C499", "C880", "C1355", "C1908", "C2670", "C3540",
    "C5315", "C6288", "C7552", "S1488", "S38417", "S35932", "S38584",
    "S15850",
]
NUM_COLORS = 4
ALPHA = 0.1

#: The exact search is exponential; components whose merged graph exceeds
#: this many nodes are skipped by the backtrack leg (and counted).  The
#: expansion budget below bounds per-search time, so the cap only guards
#: against pathological setup costs on huge components.
BACKTRACK_MAX_NODES = 128

#: Expansion budget for the timed searches: bounds the reference sweep to
#: tens of milliseconds per deep component while still exercising a search
#: deep enough for the C core to matter.  Parity holds at any budget.
BACKTRACK_BENCH_LIMIT = 20_000

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "solve_kernels.json"


def _modes() -> List[str]:
    return ["off", "python"] + (["compiled"] if compiled_core() is not None else [])


def _time_sweep(func: Callable, items: List, repeats: int) -> float:
    """Best sweep time over all items, per item, in seconds.

    Best-of (not mean): scheduling noise only ever *adds* time, so the
    minimum is the most reproducible estimator for a before/after ratio.
    """
    sweeps = []
    for _ in range(repeats):
        start = time.perf_counter()
        for item in items:
            func(item)
        sweeps.append(time.perf_counter() - start)
    return min(sweeps) / len(items)


def _solver_leg(
    algorithm_cls, components: List, repeats: int
) -> Dict[str, float]:
    """Time one ColoringAlgorithm over the components in every mode."""
    reference: List[Dict[int, int]] = []
    set_kernel_mode("off")
    algorithm = algorithm_cls(NUM_COLORS, AlgorithmOptions())
    for component in components:
        reference.append(algorithm.color(component))

    legs: Dict[str, float] = {}
    for mode in _modes():
        set_kernel_mode(mode)
        for index, component in enumerate(components):
            candidate = algorithm.color(component)
            if candidate != reference[index] or list(candidate.items()) != list(
                reference[index].items()
            ):
                raise AssertionError(
                    f"{algorithm_cls.__name__} parity violation in mode "
                    f"{mode!r} on component {index} "
                    f"({component.num_vertices} vertices)"
                )
        legs[mode] = _time_sweep(algorithm.color, components, repeats)
    set_kernel_mode(None)
    return legs


def _backtrack_leg(components: List, repeats: int) -> tuple:
    """Time the exact search on the small components' merged graphs."""
    merged_graphs = [
        build_merged_graph(component, [])
        for component in components
        if component.num_vertices <= BACKTRACK_MAX_NODES
    ]
    skipped = len(components) - len(merged_graphs)
    if not merged_graphs:
        return {}, skipped, 0

    limit = BACKTRACK_BENCH_LIMIT
    reference = [
        search_merged_graph(merged, NUM_COLORS, ALPHA, expansion_limit=limit)
        for merged in merged_graphs
    ]
    legs: Dict[str, float] = {
        "off": _time_sweep(
            lambda merged: search_merged_graph(
                merged, NUM_COLORS, ALPHA, expansion_limit=limit
            ),
            merged_graphs,
            repeats,
        )
    }
    for mode in _modes():
        if mode == "off":
            continue
        set_kernel_mode(mode)
        for index, merged in enumerate(merged_graphs):
            candidate = backtrack_search(
                merged, NUM_COLORS, ALPHA, expansion_limit=limit
            )
            if candidate != reference[index] or list(candidate.items()) != list(
                reference[index].items()
            ):
                raise AssertionError(
                    f"backtrack parity violation in mode {mode!r} on merged "
                    f"graph {index} ({merged.num_nodes} nodes)"
                )
        legs[mode] = _time_sweep(
            lambda merged: backtrack_search(
                merged, NUM_COLORS, ALPHA, expansion_limit=limit
            ),
            merged_graphs,
            repeats,
        )
    set_kernel_mode(None)
    return legs, skipped, len(merged_graphs)


def _speedups(legs: Dict[str, float]) -> Dict[str, float]:
    return {
        f"{mode}_vs_reference": round(legs["off"] / legs[mode], 2)
        for mode in legs
        if mode != "off"
    }


def record_artifact(quick: bool = False, path: Path = ARTIFACT_PATH) -> dict:
    circuits = QUICK_CIRCUITS if quick else FULL_CIRCUITS
    repeats = 3 if quick else 7
    rows = []
    for circuit in circuits:
        graph = circuit_graph(circuit, NUM_COLORS).graph
        components = [
            graph.subgraph(component) for component in connected_components(graph)
        ]
        greedy_legs = _solver_leg(GreedyColoring, components, repeats)
        linear_legs = _solver_leg(LinearColoring, components, repeats)
        backtrack_legs, skipped, timed = _backtrack_leg(components, repeats)
        row = {
            "circuit": circuit,
            "components": len(components),
            "vertices": graph.num_vertices,
            "per_component_us": {
                "greedy": {m: round(s * 1e6, 3) for m, s in greedy_legs.items()},
                "linear": {m: round(s * 1e6, 3) for m, s in linear_legs.items()},
                "backtrack": {
                    m: round(s * 1e6, 3) for m, s in backtrack_legs.items()
                },
            },
            "speedups": {
                "greedy": _speedups(greedy_legs),
                "linear": _speedups(linear_legs),
                "backtrack": _speedups(backtrack_legs) if backtrack_legs else {},
            },
            "backtrack_components_timed": timed,
            "backtrack_components_skipped_over_cap": skipped,
        }
        rows.append(row)
    best_mode = "compiled" if compiled_core() is not None else "python"
    payload = {
        "benchmark": "solve_kernels",
        "num_colors": NUM_COLORS,
        "alpha": ALPHA,
        "quick": quick,
        "repeats": repeats,
        "compiled_core_available": compiled_core() is not None,
        "backtrack_max_nodes": BACKTRACK_MAX_NODES,
        "backtrack_expansion_limit": BACKTRACK_BENCH_LIMIT,
        "note": (
            "per-component microseconds, best-of over repeated full-circuit "
            "sweeps; every timed kernel call is parity-checked against the "
            "reference coloring first.  'off' is the dict-walking reference; "
            "the backtrack leg runs only on components whose merged graph "
            "has <= backtrack_max_nodes nodes (skips are counted per row) "
            "and under backtrack_expansion_limit expansions per search."
        ),
        "circuits": rows,
        "min_best_mode_speedup": {
            solver: min(
                row["speedups"][solver].get(f"{best_mode}_vs_reference", 0.0)
                for row in rows
                if row["speedups"][solver]
            )
            for solver in ("greedy", "linear", "backtrack")
        },
        "best_mode": best_mode,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: two circuits, fewer repeats",
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=ARTIFACT_PATH,
        help=f"artifact output path (default: {ARTIFACT_PATH})",
    )
    args = parser.parse_args(argv)
    payload = record_artifact(quick=args.quick, path=args.artifact)
    best = payload["best_mode"]
    for row in payload["circuits"]:
        speedups = row["speedups"]

        def best_of(solver: str) -> str:
            leg = speedups[solver].get(f"{best}_vs_reference")
            return f"{leg:6.2f}x" if leg else "   n/a"

        print(
            f"{row['circuit']:>7} ({row['components']:4d} components): "
            f"greedy {best_of('greedy')}  linear {best_of('linear')}  "
            f"backtrack {best_of('backtrack')} "
            f"({row['backtrack_components_timed']} timed, "
            f"{row['backtrack_components_skipped_over_cap']} over cap)"
        )
    print(f"minimum {best}-mode speedup per solver: {payload['min_best_mode_speedup']}")
    print(f"artifact written to {args.artifact}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
