"""Ablation benchmark: the SDP merge threshold t_th of Algorithm 1.

The paper fixes ``t_th = 0.9``: vertex pairs whose relaxed inner product
exceeds the threshold are merged before the exact backtracking.  Lower
thresholds merge more aggressively (faster, riskier), higher thresholds leave
more work to the search.  This sweep records both runtime and quality so the
choice can be reproduced.
"""

from __future__ import annotations

import pytest

from repro.core.division import divide_and_color
from repro.core.evaluation import count_conflicts, count_stitches
from repro.core.options import AlgorithmOptions
from repro.core.sdp_coloring import SdpColoring

CIRCUIT = "C1908"
THRESHOLDS = [0.7, 0.8, 0.9, 0.95, 0.99]


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_sdp_merge_threshold_sweep(benchmark, graph_for, threshold):
    benchmark.group = "sdp-threshold"
    graph = graph_for(CIRCUIT, 4).graph
    options = AlgorithmOptions(sdp_merge_threshold=threshold)

    def job():
        return divide_and_color(graph, SdpColoring(4, options, mapping="backtrack"))

    coloring = benchmark.pedantic(job, rounds=1, iterations=1)
    benchmark.extra_info["threshold"] = threshold
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)
