"""Micro-benchmarks of the substrates the decomposer is built on.

These do not map to a specific table but keep the expensive building blocks
honest: decomposition-graph construction (spatial hashing + exact distances),
Gomory-Hu tree construction (n-1 Dinic max-flows), the vector-program solver,
and the low-degree peeling pass.  Regressions here translate directly into
the Table 1/2 CPU columns.
"""

from __future__ import annotations

import pytest

from repro.bench.circuits import load_circuit
from repro.bench.synthetic import dense_contact_array
from repro.core.options import DecomposerOptions
from repro.graph.construction import build_decomposition_graph
from repro.graph.gomory_hu import gomory_hu_tree
from repro.graph.simplify import peel_low_degree_vertices
from repro.opt.sdp import VectorProgramSolver

from conftest import bench_scale


@pytest.mark.parametrize("circuit", ["C432", "C7552"])
def test_graph_construction(benchmark, circuit):
    """Layout -> decomposition graph (conflict, stitch and friend edges)."""
    benchmark.group = "construction"
    layout = load_circuit(circuit, scale=bench_scale())
    options = DecomposerOptions.for_quadruple_patterning().construction

    result = benchmark(lambda: build_decomposition_graph(layout, options=options))
    benchmark.extra_info["vertices"] = result.graph.num_vertices
    benchmark.extra_info["conflict_edges"] = result.graph.num_conflict_edges


def test_gomory_hu_tree(benchmark):
    """GH-tree of a dense contact-array conflict graph."""
    benchmark.group = "graph-algorithms"
    layout = dense_contact_array(5, 8)
    options = DecomposerOptions.for_quadruple_patterning().construction
    graph = build_decomposition_graph(layout, options=options).graph

    tree = benchmark(
        lambda: gomory_hu_tree(graph.vertices(), graph.conflict_edges())
    )
    benchmark.extra_info["vertices"] = len(tree.vertices)


def test_low_degree_peeling(benchmark):
    """Iterative non-critical vertex removal on a full circuit graph."""
    benchmark.group = "graph-algorithms"
    layout = load_circuit("C7552", scale=bench_scale())
    options = DecomposerOptions.for_quadruple_patterning().construction
    graph = build_decomposition_graph(layout, options=options).graph

    kernel, stack = benchmark(lambda: peel_low_degree_vertices(graph, 4))
    benchmark.extra_info["kernel_vertices"] = kernel.num_vertices
    benchmark.extra_info["peeled"] = len(stack)


@pytest.mark.parametrize("size", [10, 20, 40])
def test_sdp_solver_scaling(benchmark, size):
    """Vector-program solve time vs component size (ring + chords)."""
    benchmark.group = "sdp-solver"
    edges = [(i, (i + 1) % size) for i in range(size)]
    edges += [(i, (i + 3) % size) for i in range(size)]
    edges = sorted({(min(u, v), max(u, v)) for u, v in edges if u != v})

    result = benchmark(lambda: VectorProgramSolver(4).solve(size, edges))
    benchmark.extra_info["vertices"] = size
    benchmark.extra_info["violation"] = float(result.constraint_violation)
