"""Benchmark for Section 5: general K-patterning layout decomposition.

The framework generalises beyond K = 4; this sweep decomposes the same dense
workloads with K = 3..6 masks and records how the unavoidable conflict count
falls as masks are added (and how runtime behaves), reproducing the paper's
claim that the same machinery covers any K.
"""

from __future__ import annotations

import pytest

from repro.bench.synthetic import dense_contact_array
from repro.core.decomposer import Decomposer
from repro.core.options import DecomposerOptions

K_VALUES = [3, 4, 5, 6]
ALGORITHMS = ["linear", "sdp-backtrack"]


@pytest.mark.parametrize("num_colors", K_VALUES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_general_k_contact_array(benchmark, num_colors, algorithm):
    """Dense contact array decomposed with K masks at a fixed conflict rule."""
    benchmark.group = f"general-k:{algorithm}"
    layout = dense_contact_array(6, 10)
    options = DecomposerOptions.for_k_patterning(num_colors, algorithm)
    options.construction.min_coloring_distance = 80

    result = benchmark.pedantic(
        lambda: Decomposer(options).decompose(layout), rounds=1, iterations=1
    )
    benchmark.extra_info["num_colors"] = num_colors
    benchmark.extra_info["conflicts"] = result.solution.conflicts
    benchmark.extra_info["stitches"] = result.solution.stitches


@pytest.mark.parametrize("num_colors", [4, 5, 6])
def test_general_k_circuit(benchmark, graph_for, num_colors):
    """K sweep on a named circuit with the per-K coloring distance."""
    benchmark.group = "general-k:circuit"
    from repro.core.decomposer import make_colorer
    from repro.core.division import divide_and_color
    from repro.core.evaluation import count_conflicts, count_stitches

    graph = graph_for("C7552", num_colors).graph

    coloring = benchmark.pedantic(
        lambda: divide_and_color(graph, make_colorer("linear", num_colors)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["num_colors"] = num_colors
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)
