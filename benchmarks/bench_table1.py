"""Benchmark regenerating Table 1: quadruple patterning comparison.

The paper's Table 1 reports, for every circuit and every algorithm (ILP,
SDP+Backtrack, SDP+Greedy, Linear), the conflict number, the stitch number
and the color-assignment CPU time.  Each benchmark below measures the color
assignment of one (circuit, algorithm) cell and stores the quality metrics in
``extra_info``; the companion command

    python -m repro.experiments table1

prints the full table in the paper's layout.

To keep the pytest-benchmark run tractable the circuit list is split: the
cheap algorithms run on a representative sample of the full suite, the ILP
baseline only on the smallest circuits (the paper itself caps ILP at one hour
and reports N/A beyond).
"""

from __future__ import annotations

import pytest

from repro.core.decomposer import make_colorer
from repro.core.division import divide_and_color
from repro.core.evaluation import count_conflicts, count_stitches
from repro.core.options import AlgorithmOptions

#: Representative circuits covering small, dense and large instances.
FAST_CIRCUITS = ["C432", "C499", "C1908", "C3540", "C6288", "C7552", "S1488", "S38417"]
#: ILP is exact but slow: bench it only where the paper also finished.
ILP_CIRCUITS = ["C432", "C499", "C880"]

FAST_ALGORITHMS = ["sdp-backtrack", "sdp-greedy", "linear"]


def _run(benchmark, graph, algorithm, num_colors, ilp_time_limit=None):
    options = AlgorithmOptions()
    if ilp_time_limit is not None:
        options.ilp_time_limit = ilp_time_limit

    def job():
        colorer = make_colorer(algorithm, num_colors, options)
        return divide_and_color(graph, colorer)

    coloring = benchmark.pedantic(job, rounds=1, iterations=1)
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)
    benchmark.extra_info["vertices"] = graph.num_vertices
    benchmark.extra_info["conflict_edges"] = graph.num_conflict_edges
    benchmark.extra_info["algorithm"] = algorithm
    return coloring


@pytest.mark.parametrize("circuit", FAST_CIRCUITS)
@pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
def test_table1_color_assignment(benchmark, graph_for, circuit, algorithm):
    """Table 1 cells for the SDP and linear algorithms."""
    construction = graph_for(circuit, 4)
    benchmark.group = f"table1:{circuit}"
    _run(benchmark, construction.graph, algorithm, 4)


@pytest.mark.parametrize("circuit", ILP_CIRCUITS)
def test_table1_ilp_baseline(benchmark, graph_for, circuit):
    """Table 1 ILP column on the circuits where exact ILP is tractable."""
    construction = graph_for(circuit, 4)
    benchmark.group = f"table1:{circuit}"
    _run(benchmark, construction.graph, "ilp", 4, ilp_time_limit=20.0)
