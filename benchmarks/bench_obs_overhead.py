"""Benchmark: what observability costs the serving path.

The observability control plane rides every request (journal appends,
span collection) and a background scrape loop (federation).  This harness
pins both costs with numbers:

* **request overhead** — end-to-end ``POST /decompose`` latency against
  an in-process server with the event journal *off* vs *on* (same layout,
  same inline pool).  The delta is what ``--journal DIR`` costs a caller
  per request;
* **scrape-loop cost** — wall time of one federation round
  (``scrape_once``: fetch + parse every target) and of rendering the
  merged ``/cluster/metrics`` view, swept over fleet sizes, using one
  real server ``/metrics`` payload per simulated node.  This is the
  coordinator-side budget the ``--scrape-interval`` knob spends.

Run standalone to (re)record ``benchmarks/artifacts/obs_overhead.json``::

    python benchmarks/bench_obs_overhead.py           # full sweep
    python benchmarks/bench_obs_overhead.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.factory import wire_row_layout
from repro.obs.federate import FederationConfig, MetricsFederator
from repro.service import ServerConfig, ServerThread, ServiceClient

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "obs_overhead.json"


def _measure_request_latency(
    journal_dir: Optional[str], requests: int, warmup: int
) -> dict:
    """Per-request POST /decompose wall times against one inline server."""
    layout = wire_row_layout(num_wires=6, wire_length=800)
    config = ServerConfig(
        port=0, workers=1, force_inline_pool=True, journal_dir=journal_dir
    )
    with ServerThread(config) as (host, port):
        client = ServiceClient(host, port)
        client.wait_until_healthy()
        for i in range(warmup):
            client.decompose(layout, name=f"warm{i}", algorithm="linear")
        samples: List[float] = []
        for i in range(requests):
            start = time.perf_counter()
            client.decompose(layout, name=f"req{i}", algorithm="linear")
            samples.append(time.perf_counter() - start)
        client.close()
    samples.sort()
    return {
        "requests": requests,
        "min_us": round(samples[0] * 1e6, 1),
        "median_us": round(statistics.median(samples) * 1e6, 1),
        "p90_us": round(samples[int(len(samples) * 0.9) - 1] * 1e6, 1),
    }


def _measure_scrape_round(num_nodes: int, repeats: int) -> dict:
    """One federation round + merged render over ``num_nodes`` targets.

    Uses a real server ``/metrics`` payload per target (captured once), so
    the parse and merge see production-shaped expositions; the fetch
    callable is local, isolating the CPU cost from network noise.
    """
    with ServerThread(
        ServerConfig(port=0, workers=1, force_inline_pool=True)
    ) as (host, port):
        client = ServiceClient(host, port)
        client.wait_until_healthy()
        layout = wire_row_layout(num_wires=4, wire_length=600)
        client.decompose(layout, name="sample", algorithm="linear")
        exposition = client.metrics_text()
        client.close()

    federator = MetricsFederator(
        targets=[
            (f"node-{i}:800{i}", lambda text=exposition: text)
            for i in range(num_nodes)
        ],
        config=FederationConfig(scrape_interval=3600.0, staleness_seconds=3600.0),
    )
    scrape_times: List[float] = []
    merge_times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        federator.scrape_once()
        scrape_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        families = federator.merged_families()
        merge_times.append(time.perf_counter() - start)
    assert families  # the merged view is non-trivial
    return {
        "nodes": num_nodes,
        "exposition_bytes": len(exposition),
        "scrape_round_ms": round(min(scrape_times) * 1e3, 3),
        "merge_render_ms": round(min(merge_times) * 1e3, 3),
        "per_node_scrape_us": round(min(scrape_times) / num_nodes * 1e6, 1),
    }


def record_artifact(quick: bool = False, path: Path = ARTIFACT_PATH) -> dict:
    requests = 10 if quick else 40
    warmup = 2 if quick else 5
    fleet_sizes = [2, 8] if quick else [2, 8, 32]
    scrape_repeats = 3 if quick else 7

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        journal_off = _measure_request_latency(None, requests, warmup)
        journal_on = _measure_request_latency(
            str(Path(tmp) / "journal"), requests, warmup
        )
    delta_us = round(journal_on["median_us"] - journal_off["median_us"], 1)
    overhead_pct = (
        round(100.0 * delta_us / journal_off["median_us"], 2)
        if journal_off["median_us"]
        else None
    )

    scrape_rows = [
        _measure_scrape_round(nodes, scrape_repeats) for nodes in fleet_sizes
    ]

    payload = {
        "benchmark": "obs_overhead",
        "quick": quick,
        "note": (
            "request latencies are per-request wall times against one "
            "inline-pool server (shared-runner numbers are noisy; the "
            "committed artifact is recorded on a quiet box); scrape and "
            "merge timings are best-of CPU costs over local targets"
        ),
        "request_latency": {
            "journal_off": journal_off,
            "journal_on": journal_on,
            "journal_delta_median_us": delta_us,
            "journal_overhead_pct": overhead_pct,
        },
        "scrape_loop": scrape_rows,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer requests and fleet sizes",
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=ARTIFACT_PATH,
        help=f"artifact output path (default: {ARTIFACT_PATH})",
    )
    args = parser.parse_args(argv)
    payload = record_artifact(quick=args.quick, path=args.artifact)
    latency = payload["request_latency"]
    print(
        f"request median: journal off {latency['journal_off']['median_us']:.0f}us, "
        f"on {latency['journal_on']['median_us']:.0f}us "
        f"(delta {latency['journal_delta_median_us']:+.0f}us, "
        f"{latency['journal_overhead_pct']:+.1f}%)"
    )
    for row in payload["scrape_loop"]:
        print(
            f"scrape round over {row['nodes']:2d} nodes: "
            f"{row['scrape_round_ms']:7.3f}ms "
            f"({row['per_node_scrape_us']:.0f}us/node), "
            f"merged render {row['merge_render_ms']:.3f}ms"
        )
    print(f"artifact written to {args.artifact}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
