"""Benchmarks for the paper's illustrative figures (Figs. 1, 4, 5, 6, 7).

These are small but they regenerate the figure-level claims:

* Fig. 1 — the contact-cell 4-clique is a native conflict for triple
  patterning and decomposes cleanly for quadruple patterning,
* Fig. 4 — the linear color assignment escapes the greedy ordering trap,
* Fig. 5 — color rotation reconnects a removed 3-cut with zero conflicts,
* Fig. 6 — GH-tree division plus rotation preserves the optimal conflict count,
* Fig. 7 — conflict-edge growth of a regular wire array as min_s increases.
"""

from __future__ import annotations

import pytest

from repro.bench.cells import (
    figure4_graph,
    figure5_graph,
    figure6_graph,
    four_clique_contact_cell,
    regular_wire_array,
)
from repro.core.backtrack import BacktrackColoring
from repro.core.decomposer import Decomposer
from repro.core.evaluation import count_conflicts
from repro.core.linear_coloring import LinearColoring
from repro.core.options import DecomposerOptions
from repro.core.rotation import merge_component_colorings
from repro.graph.construction import ConstructionOptions, build_decomposition_graph
from repro.graph.gomory_hu import gomory_hu_tree


@pytest.mark.parametrize("num_colors,expected_conflicts", [(3, 1), (4, 0)])
def test_figure1_contact_cell(benchmark, num_colors, expected_conflicts):
    """Fig. 1: TPL cannot decompose the contact 4-clique, QPL can."""
    benchmark.group = "figure1"
    layout = four_clique_contact_cell()
    options = DecomposerOptions.for_k_patterning(num_colors, "backtrack")
    options.construction.min_coloring_distance = 80

    result = benchmark.pedantic(
        lambda: Decomposer(options).decompose(layout, layer="contact"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["conflicts"] = result.solution.conflicts
    benchmark.extra_info["num_colors"] = num_colors
    assert result.solution.conflicts == expected_conflicts


def test_figure4_linear_assignment(benchmark):
    """Fig. 4: the ordering-aware linear assignment finds the clean coloring."""
    benchmark.group = "figure4"
    graph = figure4_graph()
    coloring = benchmark(lambda: LinearColoring(4).color(graph))
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    assert count_conflicts(graph, coloring) == 0


def test_figure5_rotation(benchmark):
    """Fig. 5: rotation reconnects a 3-cut without new conflicts."""
    benchmark.group = "figure5"
    graph = figure5_graph()
    left = BacktrackColoring(4).color(graph.subgraph([0, 1, 2]))
    right = BacktrackColoring(4).color(graph.subgraph([3, 4, 5]))

    merged = benchmark(
        lambda: merge_component_colorings(graph, [left, right], 4, 0.1)
    )
    benchmark.extra_info["conflicts"] = count_conflicts(graph, merged)
    assert count_conflicts(graph, merged) == 0


def test_figure6_ghtree_division(benchmark):
    """Fig. 6: GH-tree 3-cut removal preserves the optimal conflict count."""
    benchmark.group = "figure6"
    graph = figure6_graph()
    optimum = count_conflicts(graph, BacktrackColoring(4).color(graph))

    def job():
        tree = gomory_hu_tree(graph.vertices(), graph.conflict_edges())
        parts = tree.components_below(4)
        colorings = [
            BacktrackColoring(4).color(graph.subgraph(part)) for part in parts
        ]
        return merge_component_colorings(graph, colorings, 4, 0.1)

    merged = benchmark(job)
    benchmark.extra_info["conflicts"] = count_conflicts(graph, merged)
    benchmark.extra_info["optimum"] = optimum
    assert count_conflicts(graph, merged) == optimum


@pytest.mark.parametrize("min_s", [40, 61, 80, 101])
def test_figure7_min_s_sweep(benchmark, min_s):
    """Fig. 7: conflict-edge count of a minimum-pitch wire array vs min_s."""
    benchmark.group = "figure7"
    layout = regular_wire_array(num_wires=12)
    options = ConstructionOptions(min_coloring_distance=min_s, enable_stitches=False)

    result = benchmark(lambda: build_decomposition_graph(layout, options=options))
    benchmark.extra_info["min_s"] = min_s
    benchmark.extra_info["conflict_edges"] = result.graph.num_conflict_edges
