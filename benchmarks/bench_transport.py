"""Benchmark: per-component cost of the serialization/hash/transport hot path.

The zero-copy PR replaced three per-component serializers — the repr-string
canonical hash, the nested-JSON component wire, and whole-object pickling
into worker processes — with one flat-array form consumed by all three.
This harness measures each leg on the Table 1 circuits and records the
before/after ratios:

* **hash**        — v1 repr-string SHA-256 (reimplemented baseline) vs the
  v2 packed-array streaming hash (cold, memo invalidated per run) vs the
  memoised re-hash (the steady-state cost inside one request);
* **wire**        — JSON v1 roundtrip (encode dict → ``json.dumps`` →
  ``json.loads`` → rebuild graph) vs binary v2 roundtrip (flatten →
  frame bytes → decode → rebuild graph);
* **dispatch**    — pickling the graph object there and back (the old
  process-pool payload) vs writing the flat frame into a shared-memory
  segment and reading+decoding it back (the new payload);
* **serialize+hash** — the end-to-end per-component preparation cost the
  coordinator pays before a component leaves the box: v1 hash + JSON encode
  vs v2 hash + binary encode (sharing one flattening), the ratio the PR's
  acceptance bar (≥ 2×) pins.

Run standalone to (re)record ``benchmarks/artifacts/transport.json``::

    python benchmarks/bench_transport.py           # full Table 1 suite
    python benchmarks/bench_transport.py --quick   # CI smoke: 2 circuits

Timings are best-of over repeated sweeps of *all* components of each
circuit, divided by the component count — per-component microseconds, the
unit that matters for the small-component-dominated distribution.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pickle
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.factory import circuit_graph
from repro.core.options import AlgorithmOptions, DivisionOptions
from repro.graph.components import connected_components
from repro.graph.flat import FlatGraph
from repro.runtime.component_io import graph_from_wire, graph_to_wire
from repro.runtime.hashing import canonical_component_key, options_fingerprint
from repro.runtime.shm_transport import (
    SHM_MIN_FRAME_BYTES,
    ShmSegment,
    read_segment,
    shared_memory_available,
)
from repro.runtime.wire_binary import decode_components_frame, encode_components_frame

QUICK_CIRCUITS = ["C432", "C6288"]
FULL_CIRCUITS = [
    "C432", "C499", "C880", "C1355", "C1908", "C2670", "C3540",
    "C5315", "C6288", "C7552", "S1488", "S38417", "S35932", "S38584",
    "S15850",
]
ALGORITHM = "linear"
NUM_COLORS = 4

ARTIFACT_PATH = Path(__file__).parent / "artifacts" / "transport.json"


def _v1_hash(graph) -> str:
    """The retired v1 hashing scheme, verbatim — the baseline under test."""
    order = graph.vertices()
    rank = {vertex: index for index, vertex in enumerate(order)}

    def relabel(edges):
        out = []
        for u, v in edges:
            ru, rv = rank[u], rank[v]
            out.append((ru, rv) if ru <= rv else (rv, ru))
        out.sort()
        return out

    weights = tuple(graph.vertex_data(v).weight for v in order)
    payload = "|".join(
        [
            "v1",
            f"n={graph.num_vertices}",
            f"K={NUM_COLORS}",
            f"alg={ALGORITHM}",
            options_fingerprint(AlgorithmOptions(), DivisionOptions()),
            f"w={weights}",
            f"ce={relabel(graph.conflict_edges())}",
            f"se={relabel(graph.stitch_edges())}",
            f"fe={relabel(graph.friend_edges())}",
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _invalidate(graph) -> None:
    """Drop the memoised flat form + keys so a hash run is really cold."""
    graph._flat = None
    graph._key_memo = {}


def _v2_hash_cold(graph) -> str:
    _invalidate(graph)
    return canonical_component_key(
        graph, NUM_COLORS, ALGORITHM, AlgorithmOptions(), DivisionOptions()
    )


def _v2_hash_memoised(graph) -> str:
    return canonical_component_key(
        graph, NUM_COLORS, ALGORITHM, AlgorithmOptions(), DivisionOptions()
    )


def _json_roundtrip(graph):
    return graph_from_wire(json.loads(json.dumps(graph_to_wire(graph))))


def _binary_roundtrip(graph):
    _invalidate(graph)
    frame = graph.to_arrays().to_bytes()
    flat, _ = FlatGraph.from_bytes(frame)
    return flat.to_graph()


def _pickle_dispatch(graph):
    return pickle.loads(pickle.dumps(graph))


# The dispatch legs never invalidate: by dispatch time the hashing leg has
# already materialised (and memoised) the flat form — production never
# flattens twice, so the benchmark must not either.
def _shm_dispatch(graph):
    segment = ShmSegment(graph.to_arrays().to_bytes())
    try:
        flat, _ = FlatGraph.from_bytes(read_segment(segment.descriptor()))
        return flat.to_graph()
    finally:
        segment.unlink()


def _inline_frame_dispatch(graph):
    """The sub-threshold path: frame bytes through the pickle channel."""
    frame = pickle.loads(pickle.dumps(graph.to_arrays().to_bytes()))
    flat, _ = FlatGraph.from_bytes(frame)
    return flat.to_graph()


def _policy_dispatch(graph):
    """What the scheduler/pool actually do: shm past the size threshold."""
    if graph.to_arrays().frame_size() >= SHM_MIN_FRAME_BYTES:
        return _shm_dispatch(graph)
    return _inline_frame_dispatch(graph)


def _serialize_hash_v1(graph):
    """Per-component prep of a v1 coordinator: repr hash + JSON wire encode."""
    _v1_hash(graph)
    return json.dumps(graph_to_wire(graph))


def _serialize_hash_v2(graph):
    """Per-component prep of a v2 coordinator: one flattening feeds both."""
    _invalidate(graph)
    key = canonical_component_key(
        graph, NUM_COLORS, ALGORITHM, AlgorithmOptions(), DivisionOptions()
    )
    return encode_components_frame([(key, graph.to_arrays())], NUM_COLORS, ALGORITHM)


def _time_per_component(
    func: Callable, components: List, repeats: int
) -> float:
    """Best sweep time over all components, per component, in seconds.

    Best-of (not mean/median): scheduling noise only ever *adds* time, so
    the minimum is the most reproducible estimator for micro-legs this
    small — exactly what a before/after ratio needs.
    """
    sweeps = []
    for _ in range(repeats):
        start = time.perf_counter()
        for graph in components:
            func(graph)
        sweeps.append(time.perf_counter() - start)
    return min(sweeps) / len(components)


def record_artifact(quick: bool = False, path: Path = ARTIFACT_PATH) -> dict:
    circuits = QUICK_CIRCUITS if quick else FULL_CIRCUITS
    repeats = 5 if quick else 9
    shm_ok = shared_memory_available()
    rows = []
    for circuit in circuits:
        graph = circuit_graph(circuit, NUM_COLORS).graph
        components = [
            graph.subgraph(component)
            for component in connected_components(graph)
        ]
        legs: Dict[str, float] = {
            "hash_v1_repr": _time_per_component(_v1_hash, components, repeats),
            "hash_v2_cold": _time_per_component(_v2_hash_cold, components, repeats),
            "hash_v2_memoised": _time_per_component(
                _v2_hash_memoised, components, repeats
            ),
            "wire_json_roundtrip": _time_per_component(
                _json_roundtrip, components, repeats
            ),
            "wire_binary_roundtrip": _time_per_component(
                _binary_roundtrip, components, repeats
            ),
            "dispatch_pickle": _time_per_component(
                _pickle_dispatch, components, repeats
            ),
            "dispatch_inline_frame": _time_per_component(
                _inline_frame_dispatch, components, repeats
            ),
            "serialize_hash_v1": _time_per_component(
                _serialize_hash_v1, components, repeats
            ),
            "serialize_hash_v2": _time_per_component(
                _serialize_hash_v2, components, repeats
            ),
        }
        if shm_ok:
            legs["dispatch_shm"] = _time_per_component(
                _shm_dispatch, components, repeats
            )
            legs["dispatch_policy"] = _time_per_component(
                _policy_dispatch, components, repeats
            )
        row = {
            "circuit": circuit,
            "components": len(components),
            "vertices": graph.num_vertices,
            "per_component_us": {
                name: round(seconds * 1e6, 3) for name, seconds in legs.items()
            },
            "speedups": {
                "hash_v2_vs_v1": round(legs["hash_v1_repr"] / legs["hash_v2_cold"], 2),
                "wire_binary_vs_json": round(
                    legs["wire_json_roundtrip"] / legs["wire_binary_roundtrip"], 2
                ),
                "serialize_hash_v2_vs_v1": round(
                    legs["serialize_hash_v1"] / legs["serialize_hash_v2"], 2
                ),
            },
        }
        row["speedups"]["inline_frame_vs_pickle"] = round(
            legs["dispatch_pickle"] / legs["dispatch_inline_frame"], 2
        )
        if shm_ok:
            row["speedups"]["shm_vs_pickle"] = round(
                legs["dispatch_pickle"] / legs["dispatch_shm"], 2
            )
            row["speedups"]["dispatch_policy_vs_pickle"] = round(
                legs["dispatch_pickle"] / legs["dispatch_policy"], 2
            )
        rows.append(row)
    payload = {
        "benchmark": "transport",
        "algorithm": ALGORITHM,
        "num_colors": NUM_COLORS,
        "quick": quick,
        "repeats": repeats,
        "shared_memory_available": shm_ok,
        "note": (
            "per-component microseconds, best-of over repeated full-circuit "
            "sweeps; hash_v2_cold re-flattens per call, hash_v2_memoised is "
            "the steady-state re-hash inside one request"
        ),
        "circuits": rows,
        "min_serialize_hash_speedup": min(
            row["speedups"]["serialize_hash_v2_vs_v1"] for row in rows
        ),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: two circuits, fewer repeats",
    )
    parser.add_argument(
        "--artifact",
        type=Path,
        default=ARTIFACT_PATH,
        help=f"artifact output path (default: {ARTIFACT_PATH})",
    )
    args = parser.parse_args(argv)
    payload = record_artifact(quick=args.quick, path=args.artifact)
    for row in payload["circuits"]:
        times = row["per_component_us"]
        speedups = row["speedups"]
        print(
            f"{row['circuit']:>7} ({row['components']:4d} components): "
            f"hash {times['hash_v1_repr']:8.1f}us -> {times['hash_v2_cold']:7.1f}us "
            f"({speedups['hash_v2_vs_v1']:5.2f}x)  "
            f"wire {times['wire_json_roundtrip']:8.1f}us -> "
            f"{times['wire_binary_roundtrip']:7.1f}us "
            f"({speedups['wire_binary_vs_json']:5.2f}x)  "
            f"ser+hash {speedups['serialize_hash_v2_vs_v1']:5.2f}x"
            + (
                f"  dispatch {speedups['dispatch_policy_vs_pickle']:5.2f}x"
                if "dispatch_policy_vs_pickle" in speedups
                else f"  dispatch {speedups['inline_frame_vs_pickle']:5.2f}x"
            )
        )
    print(
        f"minimum serialize+hash speedup across circuits: "
        f"{payload['min_serialize_hash_speedup']}x"
    )
    print(f"artifact written to {args.artifact}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
