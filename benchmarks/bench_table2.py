"""Benchmark regenerating Table 2: pentuple patterning comparison.

Table 2 evaluates the six densest circuits with K = 5 masks and
``min_s = 110 nm`` for SDP+Backtrack, SDP+Greedy and the linear color
assignment (no exact ILP exists for pentuple patterning in the paper).
``python -m repro.experiments table2`` prints the full table.
"""

from __future__ import annotations

import pytest

from repro.bench.circuits import TABLE2_CIRCUITS
from repro.core.decomposer import make_colorer
from repro.core.division import divide_and_color
from repro.core.evaluation import count_conflicts, count_stitches

ALGORITHMS = ["sdp-backtrack", "sdp-greedy", "linear"]


@pytest.mark.parametrize("circuit", TABLE2_CIRCUITS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table2_pentuple_patterning(benchmark, graph_for, circuit, algorithm):
    construction = graph_for(circuit, 5)
    graph = construction.graph
    benchmark.group = f"table2:{circuit}"

    def job():
        return divide_and_color(graph, make_colorer(algorithm, 5))

    coloring = benchmark.pedantic(job, rounds=1, iterations=1)
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)
    benchmark.extra_info["vertices"] = graph.num_vertices
    benchmark.extra_info["algorithm"] = algorithm
