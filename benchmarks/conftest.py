"""Shared fixtures for the benchmark harness.

Every benchmark runs the color-assignment stage on a pre-built decomposition
graph, mirroring how the paper reports CPU time (color assignment only, graph
construction excluded).  Layout and graph construction is delegated to the
shared factory in :mod:`repro.bench.factory` — the same helpers the unit-test
suite uses — so the two harnesses can never drift apart.  Circuit sizes are
controlled by the ``REPRO_BENCH_SCALE`` environment variable (default 0.25)
so the full suite stays laptop-friendly; set it to 1.0 to run the full-size
synthetic circuits.

Quality numbers (conflict and stitch counts) are attached to each benchmark's
``extra_info`` so the JSON output of ``pytest-benchmark`` contains everything
needed to rebuild the paper's tables.
"""

from __future__ import annotations

import pytest

from repro.bench.factory import bench_scale, circuit_graph

__all__ = ["bench_scale", "circuit_graph"]


@pytest.fixture
def graph_for():
    """Fixture returning the cached circuit-graph builder."""
    return circuit_graph
