"""Shared fixtures for the benchmark harness.

Every benchmark runs the color-assignment stage on a pre-built decomposition
graph, mirroring how the paper reports CPU time (color assignment only, graph
construction excluded).  Circuit sizes are controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 0.25) so the full suite
stays laptop-friendly; set it to 1.0 to run the full-size synthetic circuits.

Quality numbers (conflict and stitch counts) are attached to each benchmark's
``extra_info`` so the JSON output of ``pytest-benchmark`` contains everything
needed to rebuild the paper's tables.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.experiments.runner import build_graph_for_circuit
from repro.graph.construction import ConstructionResult


def bench_scale() -> float:
    """Circuit scale factor used by the benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


_GRAPH_CACHE: Dict[Tuple[str, int, float], ConstructionResult] = {}


def circuit_graph(circuit: str, num_colors: int) -> ConstructionResult:
    """Build (and cache) the decomposition graph of a benchmark circuit."""
    key = (circuit, num_colors, bench_scale())
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = build_graph_for_circuit(
            circuit, num_colors, scale=bench_scale()
        )
    return _GRAPH_CACHE[key]


@pytest.fixture
def graph_for():
    """Fixture returning the cached circuit-graph builder."""
    return circuit_graph
