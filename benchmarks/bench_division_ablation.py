"""Ablation benchmark: contribution of each graph-division technique.

Section 4 of the paper lists four division techniques (independent
components, low-degree vertex removal, biconnected components, GH-tree based
(K-1)-cut removal).  This benchmark colors the same circuit with the full
pipeline, with everything disabled, and with each technique removed in turn,
recording runtime, quality and the size of the largest piece handed to the
color assigner — the quantity the division stage exists to shrink.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.decomposer import make_colorer
from repro.core.division import DivisionReport, divide_and_color
from repro.core.evaluation import count_conflicts, count_stitches
from repro.core.options import DivisionOptions

CIRCUIT = "C6288"

VARIANTS = {
    "all-on": DivisionOptions(),
    "all-off": DivisionOptions().all_disabled(),
    "no-low-degree": DivisionOptions(low_degree_removal=False),
    "no-biconnected": DivisionOptions(biconnected_components=False),
    "no-ghtree": DivisionOptions(ghtree_cut_removal=False),
    "no-independent": DivisionOptions(independent_components=False),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_division_ablation_linear(benchmark, graph_for, variant):
    """Effect of each division technique under the linear color assignment."""
    benchmark.group = "division-ablation:linear"
    graph = graph_for(CIRCUIT, 4).graph
    division = VARIANTS[variant]
    report = DivisionReport()

    def job():
        report.__init__()
        return divide_and_color(
            graph, make_colorer("linear", 4), division=division, report=report
        )

    coloring = benchmark.pedantic(job, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["stitches"] = count_stitches(graph, coloring)
    benchmark.extra_info["largest_piece"] = report.largest_colored_piece
    benchmark.extra_info["pieces"] = report.colored_pieces


@pytest.mark.parametrize("variant", ["all-on", "no-ghtree", "no-low-degree"])
def test_division_ablation_sdp(benchmark, graph_for, variant):
    """Division matters most for the expensive SDP-based assignment."""
    benchmark.group = "division-ablation:sdp"
    graph = graph_for("C1908", 4).graph
    division = VARIANTS[variant]
    report = DivisionReport()

    def job():
        report.__init__()
        return divide_and_color(
            graph, make_colorer("sdp-backtrack", 4), division=division, report=report
        )

    coloring = benchmark.pedantic(job, rounds=1, iterations=1)
    benchmark.extra_info["variant"] = variant
    benchmark.extra_info["conflicts"] = count_conflicts(graph, coloring)
    benchmark.extra_info["largest_piece"] = report.largest_colored_piece
